"""The PDMS object: peers, mappings, and the normalised PPL catalogue.

A :class:`PDMS` collects peers, storage descriptions, and peer mappings,
validates them, and produces the *normalised* form the reformulation
algorithm works on (Step 1 of Section 4.2):

* every equality peer mapping becomes two inclusion mappings;
* every inclusion ``Q1 ⊆ Q2`` becomes a pair ``V ⊆ Q2`` (an inclusion whose
  left-hand side is a single atom) plus a definitional rule ``V :- Q1``,
  where ``V`` is a fresh predicate — unless ``Q1`` is already a single
  atom, in which case that atom itself plays the role of ``V``;
* storage descriptions are already of the shape ``R ⊆ Q`` / ``R = Q`` with
  a single stored atom on the left.

The normalised catalogue indexes definitional rules by head predicate (for
GAV-style *definitional expansion*) and inclusion descriptions by the
predicates of their right-hand sides (for LAV-style *inclusion expansion*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..datalog.atoms import Atom
from ..datalog.queries import ConjunctiveQuery, DatalogRule
from ..errors import MappingError, PDMSConfigurationError
from ..integration.views import View, ViewKind
from .mappings import (
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    StorageDescription,
)
from .peer import Peer, StoredRelation

#: Any of the three peer-mapping flavours.
AnyPeerMapping = Union[InclusionMapping, EqualityMapping, DefinitionalMapping]


@dataclass(frozen=True)
class CatalogueChange:
    """One catalogue mutation, as recorded in the PDMS change log.

    ``affected_predicates`` over-approximates the predicates whose
    reformulation behaviour may differ after the change: goal nodes over
    them may gain or lose expansions, or their stored/productive status
    may flip.  ``removed_origins`` names descriptions that no longer
    exist; any cached reformulation whose rule-goal tree used one of them
    is stale.  :class:`repro.pdms.service.QueryService` consumes these to
    invalidate only the affected cache entries.
    """

    version: int
    kind: str
    affected_predicates: frozenset = frozenset()
    removed_origins: frozenset = frozenset()
    #: ``True`` for the synthetic change returned when the requested
    #: history has been pruned from the bounded log: the caller cannot
    #: invalidate selectively and must treat *everything* as affected.
    full: bool = False


#: Retained change-log length; older entries are pruned and reads that
#: reach past the window degrade to one full-invalidation change.
MAX_CHANGE_LOG = 4096


@dataclass(frozen=True)
class NormalizedRule:
    """A definitional rule in the normalised catalogue.

    ``synthetic`` rules are the ``V :- Q1`` halves produced by normalising
    non-atomic inclusion left-hand sides; they are exempt from the
    "never reuse a description on a path" termination rule because using
    them is part of applying the *same* original description.
    """

    rule: DatalogRule
    origin: str
    synthetic: bool = False

    @property
    def head_predicate(self) -> str:
        """Predicate defined by the rule."""
        return self.rule.name


@dataclass(frozen=True)
class NormalizedInclusion:
    """An inclusion description ``V ⊆ Q2`` (or ``V = Q2``) in normal form.

    ``view``'s head is the single left-hand-side atom (peer relation,
    stored relation, or synthetic predicate); its body is the right-hand
    side query.  ``stored`` records whether the head is a stored relation
    (then a goal node labelled with it is a leaf of the rule-goal tree).
    """

    view: View
    origin: str
    stored: bool = False

    @property
    def head_predicate(self) -> str:
        """The left-hand-side (view) predicate."""
        return self.view.name

    def body_predicates(self) -> frozenset[str]:
        """Predicates of the right-hand-side query."""
        return self.view.definition.predicates()


@dataclass
class NormalizedCatalogue:
    """The complete normalised PPL catalogue of a PDMS."""

    rules: List[NormalizedRule] = field(default_factory=list)
    inclusions: List[NormalizedInclusion] = field(default_factory=list)
    stored_relations: frozenset = frozenset()
    rules_by_head: Dict[str, List[NormalizedRule]] = field(default_factory=dict)
    inclusions_by_body_predicate: Dict[str, List[NormalizedInclusion]] = field(
        default_factory=dict
    )

    def index(self) -> None:
        """(Re)build the by-predicate indexes."""
        self.rules_by_head = {}
        for rule in self.rules:
            self.rules_by_head.setdefault(rule.head_predicate, []).append(rule)
        self.inclusions_by_body_predicate = {}
        for inclusion in self.inclusions:
            for predicate in inclusion.body_predicates():
                self.inclusions_by_body_predicate.setdefault(predicate, []).append(
                    inclusion
                )

    def add_entries(
        self,
        rules: Iterable[NormalizedRule] = (),
        inclusions: Iterable[NormalizedInclusion] = (),
        stored: Iterable[str] = (),
    ) -> None:
        """Append entries and update the indexes in place (incremental add)."""
        for rule in rules:
            self.rules.append(rule)
            self.rules_by_head.setdefault(rule.head_predicate, []).append(rule)
        for inclusion in inclusions:
            self.inclusions.append(inclusion)
            for predicate in inclusion.body_predicates():
                self.inclusions_by_body_predicate.setdefault(predicate, []).append(
                    inclusion
                )
        if stored:
            self.stored_relations = self.stored_relations | frozenset(stored)

    def remove_origins(self, origins: frozenset, stored: frozenset) -> None:
        """Drop every entry whose origin is in ``origins``; reset stored set."""
        self.rules = [r for r in self.rules if r.origin not in origins]
        self.inclusions = [i for i in self.inclusions if i.origin not in origins]
        self.stored_relations = stored
        self.index()

    def definitional_for(self, predicate: str) -> Sequence[NormalizedRule]:
        """Definitional rules whose head is ``predicate``."""
        return tuple(self.rules_by_head.get(predicate, ()))

    def inclusions_mentioning(self, predicate: str) -> Sequence[NormalizedInclusion]:
        """Inclusion descriptions whose right-hand side mentions ``predicate``."""
        return tuple(self.inclusions_by_body_predicate.get(predicate, ()))

    def is_stored(self, predicate: str) -> bool:
        """Is ``predicate`` a stored relation?"""
        return predicate in self.stored_relations


class PDMS:
    """A peer data management system: peers + storage descriptions + peer mappings.

    The methods mirror Section 2's formal definition: a PDMS is a set of
    peers with schemas, stored relations at each peer, peer mappings
    ``L_N``, and storage descriptions ``D_N``.
    """

    def __init__(self, name: str = "pdms"):
        self.name = name
        self._peers: Dict[str, Peer] = {}
        self._storage_descriptions: List[StorageDescription] = []
        self._peer_mappings: List[AnyPeerMapping] = []
        self._catalogue: Optional[NormalizedCatalogue] = None
        self._version: int = 0
        self._changes: List[CatalogueChange] = []
        #: Description/mapping names in use.  Names double as catalogue
        #: *origins* (provenance, no-reuse rule, removal by origin), so
        #: they must be unique across mappings and storage descriptions.
        self._origins: set = set()
        #: Stored relations declared implicitly by add_storage_description,
        #: as (peer, relation) — removed again when their last description
        #: disappears, unlike explicitly declared stored relations.
        self._auto_declared: set = set()

    def _claim_origin(self, name: str) -> None:
        if name in self._origins:
            raise MappingError(
                f"description name {name!r} is already in use; names are "
                f"catalogue origins and must be unique"
            )
        self._origins.add(name)

    # -- versioning ----------------------------------------------------------------

    @property
    def catalogue_version(self) -> int:
        """Monotonically increasing counter, bumped on every mutation."""
        return self._version

    def changes_since(self, version: int) -> Tuple[CatalogueChange, ...]:
        """All recorded changes with ``change.version > version``.

        O(answer size): versions are assigned contiguously (every mutation
        appends exactly one change), so the suffix is an index slice.  If
        ``version`` predates the bounded log's retention window, a single
        synthetic change with ``full=True`` is returned — the caller must
        then invalidate wholesale rather than selectively.
        """
        if version >= self._version or not self._changes:
            return ()
        first_retained = self._changes[0].version
        if version < first_retained - 1:
            return (
                CatalogueChange(
                    version=self._version, kind="history-truncated", full=True
                ),
            )
        return tuple(self._changes[version + 1 - first_retained:])

    def _record_change(
        self,
        kind: str,
        affected: Iterable[str] = (),
        removed_origins: Iterable[str] = (),
    ) -> CatalogueChange:
        self._version += 1
        change = CatalogueChange(
            version=self._version,
            kind=kind,
            affected_predicates=frozenset(affected),
            removed_origins=frozenset(removed_origins),
        )
        self._changes.append(change)
        if len(self._changes) > MAX_CHANGE_LOG:
            del self._changes[: len(self._changes) - MAX_CHANGE_LOG]
        return change

    # -- peers ---------------------------------------------------------------------

    def add_peer(self, peer: Union[Peer, str]) -> Peer:
        """Register a peer (created on the fly when given a name).

        The normalised catalogue is maintained incrementally: joining a
        peer that brings no descriptions yet affects no catalogue entry,
        so existing reformulations stay valid (the paper's ad hoc ECC
        join only becomes visible once its mappings are added).
        """
        if isinstance(peer, str):
            peer = Peer(peer)
        if peer.name in self._peers:
            raise PDMSConfigurationError(f"duplicate peer name {peer.name!r}")
        self._peers[peer.name] = peer
        new_stored = frozenset(peer.stored_relation_names())
        if new_stored and self._catalogue is not None:
            if self._stored_flags_stale(new_stored):
                self._catalogue = None
            else:
                self._catalogue.add_entries(stored=new_stored)
        self._record_change("add-peer", affected=new_stored)
        return peer

    def remove_peer(self, peer_name: str) -> CatalogueChange:
        """Remove a peer plus every description that references it.

        Storage descriptions owned by (or querying) the peer and peer
        mappings mentioning any of its relations are dropped; the
        normalised catalogue is updated incrementally.  Returns the
        recorded :class:`CatalogueChange`, whose ``removed_origins`` and
        ``affected_predicates`` let caches invalidate precisely.
        """
        try:
            peer = self._peers.pop(peer_name)
        except KeyError as exc:
            raise PDMSConfigurationError(f"no peer named {peer_name!r}") from exc

        removed_origins: set = set()
        affected: set = set(peer.peer_relation_names())
        affected.update(peer.stored_relation_names())

        kept_descriptions: List[StorageDescription] = []
        removed_descriptions: List[StorageDescription] = []
        for description in self._storage_descriptions:
            if description.peer == peer_name or peer_name in description.references_peers():
                removed_origins.add(description.name)
                affected.add(description.relation)
                affected.update(description.query.predicates())
                removed_descriptions.append(description)
            else:
                kept_descriptions.append(description)
        self._storage_descriptions = kept_descriptions
        self._auto_declared = {
            (owner, relation)
            for owner, relation in self._auto_declared
            if owner != peer_name
        }
        # A cross-peer description may have auto-declared its stored
        # relation on a *surviving* owner peer; undeclare it again unless
        # another description still defines it, so no phantom stored
        # relation outlives its descriptions.
        still_defined = {
            (d.peer, d.relation) for d in kept_descriptions
        }
        for description in removed_descriptions:
            key = (description.peer, description.relation)
            if (
                description.peer != peer_name
                and key in self._auto_declared
                and key not in still_defined
            ):
                self._peers[description.peer].remove_stored_relation(description.relation)
                self._auto_declared.discard(key)

        kept_mappings: List[AnyPeerMapping] = []
        for mapping in self._peer_mappings:
            if peer_name in mapping.references_peers():
                removed_origins.add(mapping.name)
                # Only goals over these predicates can gain or lose
                # expansions from this mapping's presence; reformulations
                # that merely mention the mapping's other predicates are
                # untouched by its removal (they are caught through
                # ``used_origins`` when they actually applied it).
                affected.update(self._mapping_expansion_predicates(mapping))
            else:
                kept_mappings.append(mapping)
        self._peer_mappings = kept_mappings

        self._origins -= removed_origins
        if self._catalogue is not None:
            remaining_stored = self.stored_relation_names()
            self._catalogue.remove_origins(frozenset(removed_origins), remaining_stored)
            if any(
                inclusion.stored and inclusion.head_predicate not in remaining_stored
                for inclusion in self._catalogue.inclusions
            ):
                self._catalogue = None
        return self._record_change(
            "remove-peer", affected=affected, removed_origins=removed_origins
        )

    def _mapping_expansion_predicates(self, mapping: AnyPeerMapping) -> frozenset:
        """Predicates whose goal nodes this mapping can expand.

        This is the invalidation footprint a cache needs for both adding
        and removing the mapping.
        """
        return self._entry_expansion_predicates(*self._normalised_mapping_entries(mapping))

    @staticmethod
    def _entry_expansion_predicates(
        rules: Iterable[NormalizedRule], inclusions: Iterable[NormalizedInclusion]
    ) -> frozenset:
        """Expansion footprint of normalised entries: definitional rules
        expand goals over their head predicate, inclusions expand goals
        over their right-hand-side (body) predicates."""
        affected: set = set()
        for rule in rules:
            affected.add(rule.head_predicate)
        for inclusion in inclusions:
            affected.update(inclusion.body_predicates())
        return frozenset(affected)

    def peer(self, name: str) -> Peer:
        """Look up a peer by name."""
        try:
            return self._peers[name]
        except KeyError as exc:
            raise PDMSConfigurationError(f"no peer named {name!r}") from exc

    def peers(self) -> Tuple[Peer, ...]:
        """All registered peers."""
        return tuple(self._peers.values())

    def __contains__(self, peer_name: str) -> bool:
        return peer_name in self._peers

    # -- relations ------------------------------------------------------------------

    def stored_relation_names(self) -> frozenset[str]:
        """Names of every stored relation in the system."""
        names = set()
        for peer in self._peers.values():
            names.update(peer.stored_relation_names())
        return frozenset(names)

    def peer_relation_names(self) -> frozenset[str]:
        """Qualified names of every peer relation in the system."""
        names = set()
        for peer in self._peers.values():
            names.update(peer.peer_relation_names())
        return frozenset(names)

    def is_stored_relation(self, predicate: str) -> bool:
        """Is ``predicate`` a stored relation of some peer?"""
        return predicate in self.stored_relation_names()

    def is_peer_relation(self, predicate: str) -> bool:
        """Is ``predicate`` a declared peer relation?"""
        return predicate in self.peer_relation_names()

    # -- descriptions -----------------------------------------------------------------

    def add_storage_description(self, description: StorageDescription) -> StorageDescription:
        """Register a storage description; the owning peer must exist."""
        if description.peer not in self._peers:
            raise PDMSConfigurationError(
                f"storage description references unknown peer {description.peer!r}"
            )
        self._claim_origin(description.name)
        owner = self._peers[description.peer]
        if description.relation not in owner.stored_relation_names():
            # Auto-declare the stored relation with positional attributes so
            # small examples and generated workloads stay concise.
            owner.add_stored_relation(
                description.relation,
                [f"a{i}" for i in range(description.arity)],
            )
            self._auto_declared.add((description.peer, description.relation))
        self._storage_descriptions.append(description)
        if self._catalogue is not None:
            if self._stored_flags_stale(frozenset({description.relation})):
                # A pre-existing entry's head just became a stored relation;
                # its frozen ``stored`` flag is stale — rebuild lazily.
                self._catalogue = None
            else:
                self._catalogue.add_entries(
                    inclusions=[self._normalised_storage_entry(description)],
                    stored={description.relation},
                )
        self._record_change(
            "add-storage",
            affected=description.query.predicates() | {description.relation},
        )
        return description

    def add_peer_mapping(self, mapping: AnyPeerMapping) -> AnyPeerMapping:
        """Register a peer mapping (inclusion, equality, or definitional)."""
        if not isinstance(
            mapping, (InclusionMapping, EqualityMapping, DefinitionalMapping)
        ):
            raise MappingError(f"unsupported peer mapping type {type(mapping).__name__}")
        self._claim_origin(mapping.name)
        self._peer_mappings.append(mapping)
        rules, inclusions = self._normalised_mapping_entries(mapping)
        if self._catalogue is not None:
            self._catalogue.add_entries(rules=rules, inclusions=inclusions)
        self._record_change(
            "add-mapping", affected=self._entry_expansion_predicates(rules, inclusions)
        )
        return mapping

    def remove_peer_mapping(self, name: str) -> CatalogueChange:
        """Remove the peer mapping called ``name`` (its stable origin)."""
        for index, mapping in enumerate(self._peer_mappings):
            if mapping.name == name:
                del self._peer_mappings[index]
                self._origins.discard(name)
                if self._catalogue is not None:
                    self._catalogue.remove_origins(
                        frozenset({name}), self.stored_relation_names()
                    )
                return self._record_change(
                    "remove-mapping",
                    affected=self._mapping_expansion_predicates(mapping),
                    removed_origins={name},
                )
        raise MappingError(f"no peer mapping named {name!r}")

    def _stored_flags_stale(self, new_stored: frozenset) -> bool:
        """Would marking ``new_stored`` as stored relations invalidate the
        frozen ``stored`` flags of already-normalised catalogue entries?"""
        assert self._catalogue is not None
        return any(
            not inclusion.stored and inclusion.head_predicate in new_stored
            for inclusion in self._catalogue.inclusions
        )

    def storage_descriptions(self) -> Tuple[StorageDescription, ...]:
        """All storage descriptions (D_N)."""
        return tuple(self._storage_descriptions)

    def peer_mappings(self) -> Tuple[AnyPeerMapping, ...]:
        """All peer mappings (L_N)."""
        return tuple(self._peer_mappings)

    # -- normalisation -----------------------------------------------------------------

    def catalogue(self) -> NormalizedCatalogue:
        """Return the normalised PPL catalogue (cached until the PDMS changes)."""
        if self._catalogue is None:
            self._catalogue = self._normalise()
        return self._catalogue

    def _normalise(self) -> NormalizedCatalogue:
        catalogue = NormalizedCatalogue(stored_relations=self.stored_relation_names())

        for mapping in self._peer_mappings:
            rules, inclusions = self._normalised_mapping_entries(mapping)
            catalogue.rules.extend(rules)
            catalogue.inclusions.extend(inclusions)

        for description in self._storage_descriptions:
            catalogue.inclusions.append(self._normalised_storage_entry(description))

        catalogue.index()
        return catalogue

    def _normalised_mapping_entries(
        self, mapping: AnyPeerMapping
    ) -> Tuple[List[NormalizedRule], List[NormalizedInclusion]]:
        """Normalise one peer mapping into catalogue entries (Step 1)."""
        rules: List[NormalizedRule] = []
        inclusions: List[NormalizedInclusion] = []
        if isinstance(mapping, DefinitionalMapping):
            rules.append(
                NormalizedRule(mapping.rule, origin=mapping.name, synthetic=False)
            )
        elif isinstance(mapping, InclusionMapping):
            self._normalise_inclusion(
                mapping, mapping.name, exact=False, rules=rules, inclusions=inclusions
            )
        elif isinstance(mapping, EqualityMapping):
            forward, backward = mapping.as_inclusions()
            # Both directions share the equality's origin so the
            # termination rule treats them as one description.
            self._normalise_inclusion(
                forward, mapping.name, exact=True, rules=rules, inclusions=inclusions
            )
            self._normalise_inclusion(
                backward, mapping.name, exact=True, rules=rules, inclusions=inclusions
            )
        return rules, inclusions

    def _normalised_storage_entry(
        self, description: StorageDescription
    ) -> NormalizedInclusion:
        """Normalise one storage description into its catalogue inclusion."""
        head = Atom(description.relation, description.query.head.args)
        view = View(
            ConjunctiveQuery(head, description.query.body),
            ViewKind.EXACT if description.exact else ViewKind.CONTAINED,
        )
        return NormalizedInclusion(view, origin=description.name, stored=True)

    def _normalise_inclusion(
        self,
        mapping: InclusionMapping,
        origin: str,
        exact: bool,
        rules: List[NormalizedRule],
        inclusions: List[NormalizedInclusion],
    ) -> None:
        kind = ViewKind.EXACT if exact else ViewKind.CONTAINED
        if mapping.left_is_single_atom():
            head_predicate = mapping.left.relational_body()[0].predicate
            head = Atom(head_predicate, mapping.right.head.args)
            view = View(ConjunctiveQuery(head, mapping.right.body), kind)
            inclusions.append(
                NormalizedInclusion(
                    view,
                    origin=origin,
                    stored=self.is_stored_relation(head_predicate),
                )
            )
            return
        # General left-hand side: introduce a synthetic predicate V.
        synthetic_predicate = f"__ppl_{mapping.name}"
        view_head = Atom(synthetic_predicate, mapping.right.head.args)
        view = View(ConjunctiveQuery(view_head, mapping.right.body), kind)
        inclusions.append(NormalizedInclusion(view, origin=origin, stored=False))
        rule_head = Atom(synthetic_predicate, mapping.left.head.args)
        rule = DatalogRule(rule_head, mapping.left.body)
        rules.append(NormalizedRule(rule, origin=origin, synthetic=True))

    # -- high-level operations ------------------------------------------------------------

    def reformulate(self, query: ConjunctiveQuery, config=None):
        """Reformulate ``query`` over stored relations (see :mod:`repro.pdms.reformulation`)."""
        from .reformulation import reformulate as _reformulate

        return _reformulate(self, query, config=config)

    def answer(self, query: ConjunctiveQuery, data, config=None):
        """Reformulate and evaluate ``query`` over stored-relation data."""
        from .execution import answer_query

        return answer_query(self, query, data, config=config)

    def analyze(self):
        """Classify query-answering complexity per Theorems 3.1–3.3."""
        from .analysis import analyze_pdms

        return analyze_pdms(self)

    # -- display -----------------------------------------------------------------------

    def describe(self) -> str:
        """A human-readable multi-line summary of the PDMS."""
        lines = [f"PDMS {self.name!r}"]
        for peer in self._peers.values():
            lines.append(f"  {peer}")
        lines.append(f"  {len(self._storage_descriptions)} storage descriptions")
        lines.append(f"  {len(self._peer_mappings)} peer mappings")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PDMS({self.name!r}: {len(self._peers)} peers, "
            f"{len(self._peer_mappings)} mappings, "
            f"{len(self._storage_descriptions)} storage descriptions)"
        )
