"""The PDMS object: peers, mappings, and the normalised PPL catalogue.

A :class:`PDMS` collects peers, storage descriptions, and peer mappings,
validates them, and produces the *normalised* form the reformulation
algorithm works on (Step 1 of Section 4.2):

* every equality peer mapping becomes two inclusion mappings;
* every inclusion ``Q1 ⊆ Q2`` becomes a pair ``V ⊆ Q2`` (an inclusion whose
  left-hand side is a single atom) plus a definitional rule ``V :- Q1``,
  where ``V`` is a fresh predicate — unless ``Q1`` is already a single
  atom, in which case that atom itself plays the role of ``V``;
* storage descriptions are already of the shape ``R ⊆ Q`` / ``R = Q`` with
  a single stored atom on the left.

The normalised catalogue indexes definitional rules by head predicate (for
GAV-style *definitional expansion*) and inclusion descriptions by the
predicates of their right-hand sides (for LAV-style *inclusion expansion*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..datalog.atoms import Atom
from ..datalog.queries import ConjunctiveQuery, DatalogRule
from ..errors import MappingError, PDMSConfigurationError
from ..integration.views import View, ViewKind
from .mappings import (
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    StorageDescription,
)
from .peer import Peer, StoredRelation

#: Any of the three peer-mapping flavours.
AnyPeerMapping = Union[InclusionMapping, EqualityMapping, DefinitionalMapping]


@dataclass(frozen=True)
class NormalizedRule:
    """A definitional rule in the normalised catalogue.

    ``synthetic`` rules are the ``V :- Q1`` halves produced by normalising
    non-atomic inclusion left-hand sides; they are exempt from the
    "never reuse a description on a path" termination rule because using
    them is part of applying the *same* original description.
    """

    rule: DatalogRule
    origin: str
    synthetic: bool = False

    @property
    def head_predicate(self) -> str:
        """Predicate defined by the rule."""
        return self.rule.name


@dataclass(frozen=True)
class NormalizedInclusion:
    """An inclusion description ``V ⊆ Q2`` (or ``V = Q2``) in normal form.

    ``view``'s head is the single left-hand-side atom (peer relation,
    stored relation, or synthetic predicate); its body is the right-hand
    side query.  ``stored`` records whether the head is a stored relation
    (then a goal node labelled with it is a leaf of the rule-goal tree).
    """

    view: View
    origin: str
    stored: bool = False

    @property
    def head_predicate(self) -> str:
        """The left-hand-side (view) predicate."""
        return self.view.name

    def body_predicates(self) -> frozenset[str]:
        """Predicates of the right-hand-side query."""
        return self.view.definition.predicates()


@dataclass
class NormalizedCatalogue:
    """The complete normalised PPL catalogue of a PDMS."""

    rules: List[NormalizedRule] = field(default_factory=list)
    inclusions: List[NormalizedInclusion] = field(default_factory=list)
    stored_relations: frozenset = frozenset()
    rules_by_head: Dict[str, List[NormalizedRule]] = field(default_factory=dict)
    inclusions_by_body_predicate: Dict[str, List[NormalizedInclusion]] = field(
        default_factory=dict
    )

    def index(self) -> None:
        """(Re)build the by-predicate indexes."""
        self.rules_by_head = {}
        for rule in self.rules:
            self.rules_by_head.setdefault(rule.head_predicate, []).append(rule)
        self.inclusions_by_body_predicate = {}
        for inclusion in self.inclusions:
            for predicate in inclusion.body_predicates():
                self.inclusions_by_body_predicate.setdefault(predicate, []).append(
                    inclusion
                )

    def definitional_for(self, predicate: str) -> Sequence[NormalizedRule]:
        """Definitional rules whose head is ``predicate``."""
        return tuple(self.rules_by_head.get(predicate, ()))

    def inclusions_mentioning(self, predicate: str) -> Sequence[NormalizedInclusion]:
        """Inclusion descriptions whose right-hand side mentions ``predicate``."""
        return tuple(self.inclusions_by_body_predicate.get(predicate, ()))

    def is_stored(self, predicate: str) -> bool:
        """Is ``predicate`` a stored relation?"""
        return predicate in self.stored_relations


class PDMS:
    """A peer data management system: peers + storage descriptions + peer mappings.

    The methods mirror Section 2's formal definition: a PDMS is a set of
    peers with schemas, stored relations at each peer, peer mappings
    ``L_N``, and storage descriptions ``D_N``.
    """

    def __init__(self, name: str = "pdms"):
        self.name = name
        self._peers: Dict[str, Peer] = {}
        self._storage_descriptions: List[StorageDescription] = []
        self._peer_mappings: List[AnyPeerMapping] = []
        self._catalogue: Optional[NormalizedCatalogue] = None

    # -- peers ---------------------------------------------------------------------

    def add_peer(self, peer: Union[Peer, str]) -> Peer:
        """Register a peer (created on the fly when given a name)."""
        if isinstance(peer, str):
            peer = Peer(peer)
        if peer.name in self._peers:
            raise PDMSConfigurationError(f"duplicate peer name {peer.name!r}")
        self._peers[peer.name] = peer
        self._catalogue = None
        return peer

    def peer(self, name: str) -> Peer:
        """Look up a peer by name."""
        try:
            return self._peers[name]
        except KeyError as exc:
            raise PDMSConfigurationError(f"no peer named {name!r}") from exc

    def peers(self) -> Tuple[Peer, ...]:
        """All registered peers."""
        return tuple(self._peers.values())

    def __contains__(self, peer_name: str) -> bool:
        return peer_name in self._peers

    # -- relations ------------------------------------------------------------------

    def stored_relation_names(self) -> frozenset[str]:
        """Names of every stored relation in the system."""
        names = set()
        for peer in self._peers.values():
            names.update(peer.stored_relation_names())
        return frozenset(names)

    def peer_relation_names(self) -> frozenset[str]:
        """Qualified names of every peer relation in the system."""
        names = set()
        for peer in self._peers.values():
            names.update(peer.peer_relation_names())
        return frozenset(names)

    def is_stored_relation(self, predicate: str) -> bool:
        """Is ``predicate`` a stored relation of some peer?"""
        return predicate in self.stored_relation_names()

    def is_peer_relation(self, predicate: str) -> bool:
        """Is ``predicate`` a declared peer relation?"""
        return predicate in self.peer_relation_names()

    # -- descriptions -----------------------------------------------------------------

    def add_storage_description(self, description: StorageDescription) -> StorageDescription:
        """Register a storage description; the owning peer must exist."""
        if description.peer not in self._peers:
            raise PDMSConfigurationError(
                f"storage description references unknown peer {description.peer!r}"
            )
        owner = self._peers[description.peer]
        if description.relation not in owner.stored_relation_names():
            # Auto-declare the stored relation with positional attributes so
            # small examples and generated workloads stay concise.
            owner.add_stored_relation(
                description.relation,
                [f"a{i}" for i in range(description.arity)],
            )
        self._storage_descriptions.append(description)
        self._catalogue = None
        return description

    def add_peer_mapping(self, mapping: AnyPeerMapping) -> AnyPeerMapping:
        """Register a peer mapping (inclusion, equality, or definitional)."""
        if not isinstance(
            mapping, (InclusionMapping, EqualityMapping, DefinitionalMapping)
        ):
            raise MappingError(f"unsupported peer mapping type {type(mapping).__name__}")
        self._peer_mappings.append(mapping)
        self._catalogue = None
        return mapping

    def storage_descriptions(self) -> Tuple[StorageDescription, ...]:
        """All storage descriptions (D_N)."""
        return tuple(self._storage_descriptions)

    def peer_mappings(self) -> Tuple[AnyPeerMapping, ...]:
        """All peer mappings (L_N)."""
        return tuple(self._peer_mappings)

    # -- normalisation -----------------------------------------------------------------

    def catalogue(self) -> NormalizedCatalogue:
        """Return the normalised PPL catalogue (cached until the PDMS changes)."""
        if self._catalogue is None:
            self._catalogue = self._normalise()
        return self._catalogue

    def _normalise(self) -> NormalizedCatalogue:
        catalogue = NormalizedCatalogue(stored_relations=self.stored_relation_names())

        for mapping in self._peer_mappings:
            if isinstance(mapping, DefinitionalMapping):
                catalogue.rules.append(
                    NormalizedRule(mapping.rule, origin=mapping.name, synthetic=False)
                )
            elif isinstance(mapping, InclusionMapping):
                self._normalise_inclusion(mapping, mapping.name, exact=False, catalogue=catalogue)
            elif isinstance(mapping, EqualityMapping):
                forward, backward = mapping.as_inclusions()
                # Both directions share the equality's origin so the
                # termination rule treats them as one description.
                self._normalise_inclusion(forward, mapping.name, exact=True, catalogue=catalogue)
                self._normalise_inclusion(backward, mapping.name, exact=True, catalogue=catalogue)

        for description in self._storage_descriptions:
            head = Atom(description.relation, description.query.head.args)
            view = View(
                ConjunctiveQuery(head, description.query.body),
                ViewKind.EXACT if description.exact else ViewKind.CONTAINED,
            )
            catalogue.inclusions.append(
                NormalizedInclusion(view, origin=description.name, stored=True)
            )

        catalogue.index()
        return catalogue

    def _normalise_inclusion(
        self,
        mapping: InclusionMapping,
        origin: str,
        exact: bool,
        catalogue: NormalizedCatalogue,
    ) -> None:
        kind = ViewKind.EXACT if exact else ViewKind.CONTAINED
        if mapping.left_is_single_atom():
            head_predicate = mapping.left.relational_body()[0].predicate
            head = Atom(head_predicate, mapping.right.head.args)
            view = View(ConjunctiveQuery(head, mapping.right.body), kind)
            catalogue.inclusions.append(
                NormalizedInclusion(
                    view,
                    origin=origin,
                    stored=self.is_stored_relation(head_predicate),
                )
            )
            return
        # General left-hand side: introduce a synthetic predicate V.
        synthetic_predicate = f"__ppl_{mapping.name}"
        view_head = Atom(synthetic_predicate, mapping.right.head.args)
        view = View(ConjunctiveQuery(view_head, mapping.right.body), kind)
        catalogue.inclusions.append(
            NormalizedInclusion(view, origin=origin, stored=False)
        )
        rule_head = Atom(synthetic_predicate, mapping.left.head.args)
        rule = DatalogRule(rule_head, mapping.left.body)
        catalogue.rules.append(NormalizedRule(rule, origin=origin, synthetic=True))

    # -- high-level operations ------------------------------------------------------------

    def reformulate(self, query: ConjunctiveQuery, config=None):
        """Reformulate ``query`` over stored relations (see :mod:`repro.pdms.reformulation`)."""
        from .reformulation import reformulate as _reformulate

        return _reformulate(self, query, config=config)

    def answer(self, query: ConjunctiveQuery, data, config=None):
        """Reformulate and evaluate ``query`` over stored-relation data."""
        from .execution import answer_query

        return answer_query(self, query, data, config=config)

    def analyze(self):
        """Classify query-answering complexity per Theorems 3.1–3.3."""
        from .analysis import analyze_pdms

        return analyze_pdms(self)

    # -- display -----------------------------------------------------------------------

    def describe(self) -> str:
        """A human-readable multi-line summary of the PDMS."""
        lines = [f"PDMS {self.name!r}"]
        for peer in self._peers.values():
            lines.append(f"  {peer}")
        lines.append(f"  {len(self._storage_descriptions)} storage descriptions")
        lines.append(f"  {len(self._peer_mappings)} peer mappings")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PDMS({self.name!r}: {len(self._peers)} peers, "
            f"{len(self._peer_mappings)} mappings, "
            f"{len(self._storage_descriptions)} storage descriptions)"
        )
