"""The PPL mapping language: storage descriptions and peer mappings.

Section 2.1.2 of the paper defines two kinds of mappings:

* **Storage descriptions** ``A:R = Q`` or ``A:R ⊆ Q`` relate a stored
  relation ``R`` at peer ``A`` to a query ``Q`` over ``A``'s peer schema
  (equality = closed world, containment = open world).

* **Peer mappings** come in two flavours:

  - *inclusion / equality mappings* ``Q1(A̅1) ⊆ Q2(A̅2)`` /
    ``Q1(A̅1) = Q2(A̅2)`` between conjunctive queries of the same arity over
    (sets of) peers — these subsume both LAV- and GAV-style mappings;
  - *definitional mappings*: datalog rules whose head and body are peer
    relations — kept separate because restricting equalities to be
    definitional makes query answering tractable (Theorem 3.2) and because
    several rules with the same head express disjunction.

Every mapping carries a stable ``name`` used for provenance in the
rule-goal tree and for the "do not reuse a description on the same path"
termination rule of the reformulation algorithm.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from ..datalog.atoms import Atom
from ..datalog.queries import ConjunctiveQuery, DatalogRule
from ..datalog.terms import Variable
from ..errors import MappingError

_COUNTER = itertools.count()


def _auto_name(prefix: str) -> str:
    return f"{prefix}_{next(_COUNTER)}"


def _peer_of(predicate: str) -> Optional[str]:
    """Peer part of a qualified relation name, or ``None`` if unqualified."""
    if ":" in predicate:
        return predicate.partition(":")[0]
    return None


@dataclass(frozen=True)
class StorageDescription:
    """A storage description ``R = Q`` or ``R ⊆ Q``.

    Parameters
    ----------
    peer:
        Name of the peer storing ``relation``.
    relation:
        The stored relation name (unqualified).
    query:
        A conjunctive query over peer relations; its head arity must equal
        the stored relation's arity and its head arguments name the
        correspondence between stored columns and query variables.
    exact:
        ``True`` for equality (closed world), ``False`` for containment
        (open world, the common case).
    """

    peer: str
    relation: str
    query: ConjunctiveQuery
    exact: bool = False
    name: str = field(default="")

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", _auto_name(f"store_{self.relation}"))
        if ":" in self.relation:
            raise MappingError(
                f"stored relation names must be unqualified, got {self.relation!r}"
            )

    @property
    def arity(self) -> int:
        """Arity of the stored relation (the query head arity)."""
        return self.query.arity

    def stored_atom(self) -> Atom:
        """The stored relation atom with the query's head arguments."""
        return Atom(self.relation, self.query.head.args)

    def references_peers(self) -> frozenset[str]:
        """Peers whose relations appear in the description's query body."""
        return frozenset(
            p for p in (_peer_of(pred) for pred in self.query.predicates()) if p
        )

    def has_projection(self) -> bool:
        """Does the defining query project away some body variable?"""
        return self.query.has_projection()

    def has_comparisons(self) -> bool:
        """Does the defining query use comparison predicates?"""
        return self.query.has_comparisons()

    def __str__(self) -> str:
        op = "=" if self.exact else "⊆"
        body = ", ".join(str(a) for a in self.query.body)
        return f"{self.relation}{tuple(str(a) for a in self.query.head.args)} {op} {body}"


@dataclass(frozen=True)
class InclusionMapping:
    """An inclusion peer mapping ``Q1(A̅1) ⊆ Q2(A̅2)``.

    ``left`` and ``right`` are conjunctive queries of identical arity; the
    i-th head argument of ``left`` corresponds to the i-th head argument of
    ``right``.  The mapping states that evaluating ``left`` always produces
    a subset of evaluating ``right``.
    """

    left: ConjunctiveQuery
    right: ConjunctiveQuery
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.left.arity != self.right.arity:
            raise MappingError(
                f"inclusion mapping sides have different arities: "
                f"{self.left.arity} vs {self.right.arity}"
            )
        if not self.name:
            object.__setattr__(self, "name", _auto_name("incl"))

    @property
    def arity(self) -> int:
        """Common head arity of both sides."""
        return self.left.arity

    def left_predicates(self) -> frozenset[str]:
        """Relations used on the left-hand side."""
        return self.left.predicates()

    def right_predicates(self) -> frozenset[str]:
        """Relations used on the right-hand side."""
        return self.right.predicates()

    def references_peers(self) -> frozenset[str]:
        """Peers referenced on either side."""
        peers = set()
        for predicate in self.left_predicates() | self.right_predicates():
            peer = _peer_of(predicate)
            if peer:
                peers.add(peer)
        return frozenset(peers)

    def left_is_single_atom(self) -> bool:
        """Is the left-hand side a single relational atom with the head's arguments?

        This is the common LAV shape (``LH:CritBed(...) ⊆ H:CritBed(...),
        H:Patient(...)``) for which no auxiliary predicate is needed during
        normalisation.
        """
        body = self.left.relational_body()
        return (
            len(self.left.body) == 1
            and len(body) == 1
            and body[0].args == self.left.head.args
        )

    def has_projection(self) -> bool:
        """Does either side project away body variables?"""
        return self.left.has_projection() or self.right.has_projection()

    def has_comparisons(self) -> bool:
        """Does either side use comparison predicates?"""
        return self.left.has_comparisons() or self.right.has_comparisons()

    def __str__(self) -> str:
        left_body = ", ".join(str(a) for a in self.left.body)
        right_body = ", ".join(str(a) for a in self.right.body)
        return f"[{left_body}] ⊆ [{right_body}]"


@dataclass(frozen=True)
class EqualityMapping:
    """An equality peer mapping ``Q1(A̅1) = Q2(A̅2)``.

    Semantically equivalent to the pair of inclusions in both directions
    (which is how the reformulation algorithm uses it — Step 1), but kept
    distinct because the complexity results treat equalities specially
    (they automatically create cycles; Theorem 3.2).
    """

    left: ConjunctiveQuery
    right: ConjunctiveQuery
    name: str = field(default="")

    def __post_init__(self) -> None:
        if self.left.arity != self.right.arity:
            raise MappingError(
                f"equality mapping sides have different arities: "
                f"{self.left.arity} vs {self.right.arity}"
            )
        if not self.name:
            object.__setattr__(self, "name", _auto_name("eq"))

    def as_inclusions(self) -> Tuple[InclusionMapping, InclusionMapping]:
        """The two inclusion mappings this equality stands for."""
        return (
            InclusionMapping(self.left, self.right, name=f"{self.name}__fwd"),
            InclusionMapping(self.right, self.left, name=f"{self.name}__bwd"),
        )

    def references_peers(self) -> frozenset[str]:
        """Peers referenced on either side."""
        forward, _ = self.as_inclusions()
        return forward.references_peers()

    def has_projection(self) -> bool:
        """Does either side project away body variables?

        Theorem 3.2 requires equality descriptions to be projection-free
        for tractability.
        """
        return self.left.has_projection() or self.right.has_projection()

    def has_comparisons(self) -> bool:
        """Does either side use comparison predicates?"""
        return self.left.has_comparisons() or self.right.has_comparisons()

    def __str__(self) -> str:
        left_body = ", ".join(str(a) for a in self.left.body)
        right_body = ", ".join(str(a) for a in self.right.body)
        return f"[{left_body}] = [{right_body}]"


@dataclass(frozen=True)
class DefinitionalMapping:
    """A definitional (datalog-style, GAV-like) peer mapping.

    The rule's head is a peer relation; its body mentions peer relations
    (of the same or other peers).  Several definitional mappings with the
    same head predicate express a union (disjunction).
    """

    rule: DatalogRule
    name: str = field(default="")

    def __init__(self, rule: ConjunctiveQuery, name: str = ""):
        converted = rule if isinstance(rule, DatalogRule) else DatalogRule(rule.head, rule.body)
        object.__setattr__(self, "rule", converted)
        object.__setattr__(self, "name", name or _auto_name("def"))

    @property
    def head_predicate(self) -> str:
        """The defined peer relation."""
        return self.rule.name

    def body_predicates(self) -> frozenset[str]:
        """Relations used in the rule body."""
        return self.rule.predicates()

    def references_peers(self) -> frozenset[str]:
        """Peers referenced by the head or body."""
        peers = set()
        for predicate in {self.rule.name} | self.body_predicates():
            peer = _peer_of(predicate)
            if peer:
                peers.add(peer)
        return frozenset(peers)

    def has_comparisons(self) -> bool:
        """Does the rule body use comparison predicates?"""
        return self.rule.has_comparisons()

    def __str__(self) -> str:
        return str(self.rule)


#: Union type of the three peer-mapping flavours.
PeerMapping = (InclusionMapping, EqualityMapping, DefinitionalMapping)


def lav_style(atom: Atom, right: ConjunctiveQuery, name: str = "") -> InclusionMapping:
    """Convenience constructor for the common LAV shape ``atom ⊆ Q2``.

    Builds the left-hand side as the identity query over ``atom`` (its head
    equals its single body atom), matching the paper's Example 2.2 LAV
    mappings.
    """
    left = ConjunctiveQuery(atom, [atom])
    return InclusionMapping(left, right, name=name)


def replication(left_atom: Atom, right_atom: Atom, name: str = "") -> EqualityMapping:
    """Convenience constructor for projection-free replication equalities.

    Mirrors the paper's Section 3 example
    ``ECC:vehicle(vid,t,c,g,d) = 9DC:vehicle(vid,t,c,g,d)``.
    """
    if left_atom.arity != right_atom.arity:
        raise MappingError("replication requires atoms of the same arity")
    left = ConjunctiveQuery(left_atom, [left_atom])
    right = ConjunctiveQuery(right_atom, [right_atom])
    return EqualityMapping(left, right, name=name)
