"""Configuration of the reformulation algorithm's optimizations.

Section 4.3 of the paper sketches several optimizations for rule-goal-tree
construction; this module turns each of them into an explicit, individually
switchable knob so the ablation benchmarks can quantify their effect:

* **dead-end detection** — precompute which predicates can possibly reach
  stored relations ("productive" predicates); expansions introducing goals
  that can neither reach stored data nor be covered by a sibling are
  pruned;
* **unsatisfiable-label pruning** — never expand a node whose constraint
  label is unsatisfiable;
* **MCD memoization** — cache MCD computations per (description, goal
  pattern, sibling pattern) so repeated sub-problems (very common in the
  generated workloads, where many peers share mapping shapes) are not
  recomputed;
* **goal-ordering priority** — expand goal nodes most likely to prune
  first (fewest applicable descriptions first), or breadth-/depth-first;
* **first-rewritings streaming** — Step 3 is a generator, so callers can
  stop after the first k rewritings (Figure 4 measures exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class ExpansionOrder(str, Enum):
    """Order in which leaf goal nodes are expanded during tree construction."""

    BREADTH_FIRST = "breadth-first"
    DEPTH_FIRST = "depth-first"
    FEWEST_OPTIONS_FIRST = "fewest-options-first"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ReformulationConfig:
    """Tunable parameters of :func:`repro.pdms.reformulation.reformulate`.

    The defaults enable every optimization; the ablation benchmarks switch
    them off one at a time.
    """

    #: Prune expansions that introduce goals provably unable to reach stored data.
    prune_dead_ends: bool = True
    #: Prune nodes whose constraint label is unsatisfiable.
    prune_unsatisfiable: bool = True
    #: Cache MCD construction across structurally identical expansion requests.
    memoize_mcds: bool = True
    #: Drop conjunctive rewritings subsumed by previously emitted ones.
    remove_redundant_rewritings: bool = False
    #: Minimize each emitted conjunctive rewriting (drop redundant atoms).
    minimize_rewritings: bool = False
    #: Order in which leaves are expanded.
    expansion_order: ExpansionOrder = ExpansionOrder.BREADTH_FIRST
    #: Hard cap on the number of nodes in the tree (safety net for
    #: adversarial inputs; ``None`` means unbounded).
    max_nodes: Optional[int] = None
    #: Hard cap on goal-node depth (``None`` means bounded only by the
    #: no-reuse termination rule).
    max_depth: Optional[int] = None

    def without_optimizations(self) -> "ReformulationConfig":
        """A copy of this configuration with every optimization disabled."""
        return ReformulationConfig(
            prune_dead_ends=False,
            prune_unsatisfiable=False,
            memoize_mcds=False,
            remove_redundant_rewritings=False,
            minimize_rewritings=False,
            expansion_order=self.expansion_order,
            max_nodes=self.max_nodes,
            max_depth=self.max_depth,
        )


DEFAULT_CONFIG = ReformulationConfig()
