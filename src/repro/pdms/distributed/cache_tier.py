"""A cluster-wide fragment-cache tier behind the ordinary Transport contract.

Every :class:`~repro.pdms.service.QueryService` warms a *private*
:class:`~repro.pdms.materialization.FragmentCache`; adding worker
processes therefore multiplies cold caches instead of hit rates.  This
module adds the shared level between a service's local LRU and a fresh
compute — as a **cache peer**, not a new protocol:

* :class:`FragmentStore` duck-types the instance surface the transports
  already host (``relations``/``arity``/``cardinality``/``data_version``/
  ``get_matching``/``add``), serving two pseudo-relations:
  ``__fragments__`` (arity 4: fragment key, version token, relations
  read, pickled payload — *get* is a bound-pattern scan, *put* is an
  insert) and ``__evict__`` (arity 1: inserting a relation name evicts
  every fragment that reads it).  Because that is the whole wire surface,
  the store is hostable by :class:`~repro.pdms.distributed.transport.LoopbackTransport`
  *and* :class:`~repro.pdms.distributed.process.ProcessTransport`
  unchanged — one worker process can serve warm fragments to every
  cluster on the machine;
* :class:`CacheTierClient` wraps one transport peer as the get/put/
  invalidate surface :class:`~repro.pdms.materialization.FragmentCache`
  consults (see its ``tier`` parameter).  Entries are keyed by canonical
  fragment key and matched by **composite version token** — the same
  sorted per-owner token tuple local caching keys on — so a stale entry
  can be *returned* by the store but never *accepted* by a client whose
  token moved, and cross-process reuse is sound exactly when both
  clusters observe the same token space (same transport, or loopbacks
  over the same live instances);
* a failed cache peer **degrades to compute-locally, never to wrong
  answers**: every client operation catches
  :class:`~repro.errors.TransportError` and reports a miss-like status,
  and a consecutive-failure breaker stops hammering a dead peer.

``REPRO_CACHE_TIER=1`` (see :func:`repro.config.cache_tier_enabled`)
attaches a process-global default store to every service-owned fragment
cache — the "many clusters, one machine" deployment — via
:func:`default_cache_tier`.
"""

from __future__ import annotations

import itertools
import pickle
import threading
from collections import OrderedDict
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ...datalog.indexing import WILDCARD
from ...errors import EvaluationError, InstanceError, TransportError
from ...obs.metrics import METRICS_SCHEMA_VERSION
from ...obs.trace import current_span, wire_context
from ..materialization import DEFAULT_FRAGMENT_CACHE_BYTES
from .hedging import HalfOpenBreaker
from .transport import EncodedPattern, Row, Transport, encode_pattern

#: Conventional transport-peer name of the shared cache tier.
CACHE_PEER = "cache-tier"

#: The fragment store's pseudo-relation: (key, token, relations, payload).
FRAGMENTS_RELATION = "__fragments__"

#: The eviction pseudo-relation: inserting ``(relation_name,)`` drops
#: every fragment entry that reads it.
EVICT_RELATION = "__evict__"

#: Fixed per-entry overhead charged on top of the pickled payload.
_ENTRY_OVERHEAD = 256

_store_ids = itertools.count(1)


class FragmentStore:
    """A byte-budgeted fragment store hostable as an ordinary peer.

    Implements exactly the instance surface the transports serve
    (:func:`~repro.pdms.distributed.transport.describe_instance`,
    ``get_matching``, ``add``), so both the loopback and the
    one-process-per-peer backends can host it without modification.  One
    entry per fragment key, LRU within a byte budget; thread-safe.

    Shipping the store across a process boundary (``ProcessTransport``)
    starts an *empty* remote store with the same budget — a cache's
    contents are soft state, never worth serializing.
    """

    def __init__(self, max_bytes: int = DEFAULT_FRAGMENT_CACHE_BYTES):
        if max_bytes < 1:
            raise EvaluationError("FragmentStore max_bytes must be at least 1")
        self._max_bytes = max_bytes
        self._lock = threading.Lock()
        #: key -> (token, relations tuple, payload bytes); LRU order.
        self._entries: "OrderedDict[str, Tuple[object, Tuple[str, ...], bytes]]"
        self._entries = OrderedDict()
        self._current_bytes = 0
        self._store_id = next(_store_ids)
        self._version = 0
        self.evictions = 0
        self.invalidations = 0

    def __reduce__(self):
        return (FragmentStore, (self._max_bytes,))

    # -- the instance surface (what the transports serve) ------------------

    def relations(self) -> Tuple[str, ...]:
        return (FRAGMENTS_RELATION, EVICT_RELATION)

    def arity(self, relation: str) -> Optional[int]:
        if relation == FRAGMENTS_RELATION:
            return 4
        if relation == EVICT_RELATION:
            return 1
        return None

    def cardinality(self, relation: str) -> int:
        if relation == FRAGMENTS_RELATION:
            with self._lock:
                return len(self._entries)
        return 0

    def data_version(self, relation: str) -> Tuple[int, int]:
        with self._lock:
            return (-self._store_id, self._version)

    def get_tuples(self, predicate: str) -> Tuple[Row, ...]:
        if predicate != FRAGMENTS_RELATION:
            return ()
        with self._lock:
            return tuple(
                (key, token, relations, payload)
                for key, (token, relations, payload) in self._entries.items()
            )

    def get_matching(self, predicate: str, pattern) -> Tuple[Row, ...]:
        """Serve a tier *get*: the key position must be bound.

        A matching token returns the entry row (and freshens its LRU
        slot); a token mismatch is an ordinary empty result — the entry
        stays, because another cluster at the older version may still be
        entitled to it until the LRU turns it over.
        """
        if predicate != FRAGMENTS_RELATION:
            return ()
        if len(pattern) != 4:
            raise InstanceError(
                f"{FRAGMENTS_RELATION} probes carry 4 positions, got "
                f"{len(pattern)}"
            )
        key, token = pattern[0], pattern[1]
        if key is WILDCARD:
            return self.get_tuples(predicate)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return ()
            stored_token, relations, payload = entry
            if token is not WILDCARD and stored_token != token:
                return ()
            self._entries.move_to_end(key)
            return ((key, stored_token, relations, payload),)

    def add(self, relation: str, row: Sequence[object]) -> None:
        """Serve a tier *put* (``__fragments__``) or evict (``__evict__``)."""
        values = tuple(row)
        if relation == EVICT_RELATION:
            if len(values) != 1:
                raise InstanceError(f"{EVICT_RELATION} rows carry 1 position")
            self._invalidate_relation(values[0])
            return
        if relation != FRAGMENTS_RELATION:
            raise InstanceError(
                f"the cache tier serves only {FRAGMENTS_RELATION!r} and "
                f"{EVICT_RELATION!r}, not {relation!r}"
            )
        if len(values) != 4:
            raise InstanceError(f"{FRAGMENTS_RELATION} rows carry 4 positions")
        key, token, relations, payload = values
        if not isinstance(payload, bytes):
            raise InstanceError("fragment payloads must be bytes")
        nbytes = len(payload) + _ENTRY_OVERHEAD
        with self._lock:
            if nbytes > self._max_bytes:
                return  # too large to ever fit; drop silently (soft state)
            old = self._entries.pop(key, None)
            if old is not None:
                self._current_bytes -= len(old[2]) + _ENTRY_OVERHEAD
            self._entries[key] = (token, tuple(relations), payload)
            self._current_bytes += nbytes
            self._version += 1
            while self._current_bytes > self._max_bytes and self._entries:
                _, (_, _, evicted_payload) = self._entries.popitem(last=False)
                self._current_bytes -= len(evicted_payload) + _ENTRY_OVERHEAD
                self.evictions += 1

    # -- maintenance -------------------------------------------------------

    def _invalidate_relation(self, relation: object) -> None:
        with self._lock:
            doomed = [
                key
                for key, (_, relations, _) in self._entries.items()
                if relation in relations
            ]
            for key in doomed:
                _, _, payload = self._entries.pop(key)
                self._current_bytes -= len(payload) + _ENTRY_OVERHEAD
            if doomed:
                self._version += 1
                self.invalidations += len(doomed)

    def stats(self) -> Dict[str, object]:
        """A JSON-friendly snapshot of the store's occupancy and churn."""
        with self._lock:
            return {
                "schema_version": METRICS_SCHEMA_VERSION,
                "entries": len(self._entries),
                "current_bytes": self._current_bytes,
                "max_bytes": self._max_bytes,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._current_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"FragmentStore({len(self._entries)} entries, "
                f"{self._current_bytes}/{self._max_bytes} bytes)"
            )


class CacheTierClient:
    """The get/put/invalidate surface a :class:`FragmentCache` consults.

    Wraps one transport peer hosting a :class:`FragmentStore`.  Every
    operation degrades on :class:`~repro.errors.TransportError` — a dead
    or flapping cache peer costs a compute, never an answer — and a
    consecutive-failure breaker (``max_failures``, shared
    :class:`~repro.pdms.distributed.hedging.HalfOpenBreaker` machinery)
    stops hammering a peer that keeps failing.  After
    ``breaker_cooldown`` seconds one operation is let through as a
    half-open probe, so a restored cache peer rejoins on its own;
    :meth:`reset` still force-closes the breaker immediately.

    Values round-trip through :mod:`pickle` (the process backend would
    pickle them anyway); unpicklable values silently skip the tier.
    """

    def __init__(
        self,
        transport: Transport,
        peer: str = CACHE_PEER,
        max_failures: int = 8,
        breaker_cooldown: Optional[float] = None,
    ):
        self._transport = transport
        self._peer = peer
        self._breaker = HalfOpenBreaker(
            max_failures=max_failures, cooldown=breaker_cooldown
        )
        self.failures = 0

    # -- health ------------------------------------------------------------

    @property
    def peer(self) -> str:
        return self._peer

    @property
    def degraded(self) -> bool:
        """Is the failure breaker currently open (RPCs being refused)?"""
        return self._breaker.tripped

    def reset(self) -> None:
        """Force-close the breaker (e.g. after the cache peer was restored)."""
        self._breaker.reset()

    def _note(self, ok: bool) -> None:
        if ok:
            self._breaker.record_success()
        else:
            self._breaker.record_failure("cache peer RPC failed")
            self.failures += 1

    def stats(self) -> Dict[str, object]:
        """A JSON-friendly snapshot of the client's health counters."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "peer": self._peer,
            "failures": self.failures,
            "degraded": self.degraded,
        }

    # -- the tier surface --------------------------------------------------

    def get(self, key: str, token: object) -> Tuple[str, object]:
        """``("hit", value)``, ``("miss", None)``, or ``("error", None)``.

        A hit requires the stored composite token to equal ``token``
        exactly — stale entries are indistinguishable from absent ones.
        """
        if not self._breaker.allow():
            return ("error", None)
        probe: EncodedPattern = encode_pattern((key, token, WILDCARD, WILDCARD))
        try:
            # Stitch the cache peer's serve span under the ambient
            # fragment.cache span (None installs "untraced").
            with wire_context(current_span().wire_context()):
                batches = self._transport.scan_batch(
                    self._peer, [(FRAGMENTS_RELATION, probe)]
                )
        except TransportError:
            self._note(ok=False)
            return ("error", None)
        self._note(ok=True)
        rows = batches[0]
        if not rows:
            return ("miss", None)
        payload = rows[0][3]
        try:
            return ("hit", pickle.loads(payload))
        except Exception:
            # A corrupt payload is a cache fault, not a data fault.
            self._note(ok=False)
            return ("error", None)

    def put(
        self, key: str, token: object, relations: Iterable[str], value: object
    ) -> bool:
        """Offer a freshly computed fragment to the tier (best effort)."""
        if not self._breaker.allow():
            return False
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False  # unpicklable results simply stay local
        row = (key, token, tuple(sorted(relations)), payload)
        try:
            with wire_context(current_span().wire_context()):
                self._transport.insert(self._peer, FRAGMENTS_RELATION, [row])
        except TransportError:
            self._note(ok=False)
            return False
        self._note(ok=True)
        return True

    def invalidate_relations(self, relations: Iterable[str]) -> bool:
        """Evict every tier entry reading any of ``relations`` (best effort)."""
        names = [(relation,) for relation in relations]
        if not names or not self._breaker.allow():
            return False
        try:
            with wire_context(current_span().wire_context()):
                self._transport.insert(self._peer, EVICT_RELATION, names)
        except TransportError:
            self._note(ok=False)
            return False
        self._note(ok=True)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheTierClient(peer={self._peer!r}, failures={self.failures}, "
            f"degraded={self.degraded})"
        )


# ---------------------------------------------------------------------------
# The process-default tier (REPRO_CACHE_TIER=1)
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_default_client: Optional[CacheTierClient] = None
_default_store: Optional[FragmentStore] = None


def default_cache_tier() -> CacheTierClient:
    """The process-wide shared tier every service attaches to under
    ``REPRO_CACHE_TIER=1``.

    Lazily builds one :class:`FragmentStore` behind a loopback transport
    and hands every caller the same client.  Sharing one store across
    unrelated services is safe: entries match only under equal composite
    version tokens, and tokens embed process-unique instance ids, so two
    services can never accept each other's data — they merely share the
    byte budget.
    """
    global _default_client, _default_store
    with _default_lock:
        if _default_client is None:
            from .transport import LoopbackTransport

            _default_store = FragmentStore()
            transport = LoopbackTransport({CACHE_PEER: _default_store})
            _default_client = CacheTierClient(transport, CACHE_PEER)
        return _default_client


def reset_default_cache_tier() -> None:
    """Drop the process-default tier (tests; the next use rebuilds it)."""
    global _default_client, _default_store
    with _default_lock:
        _default_client = None
        _default_store = None
