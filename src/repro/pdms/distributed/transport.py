"""The peer-boundary wire contract and the in-process loopback backend.

A :class:`Transport` connects a query processor to a set of named peers,
each hosting the stored relations it contributed to the PDMS.  The
contract is deliberately tiny — four RPCs — so backends range from a
zero-copy in-process loopback to one worker process per peer
(:class:`~repro.pdms.distributed.process.ProcessTransport`) without the
planner or cache layers noticing:

``describe(peer)``
    One metadata round trip: every relation the peer serves, as
    ``{relation: (arity, cardinality, version token)}``.  The version
    token is the peer's per-relation data version fetched *over the
    wire*, so version-keyed caches (the
    :class:`~repro.pdms.materialization.FragmentCache`) keep working
    across the process boundary.

``scan_batch(peer, requests)``
    The workhorse: a batch of pattern-level scans, one round trip.  Each
    request is ``(relation, encoded pattern)`` (see
    :func:`encode_pattern`); the response carries one row tuple list per
    request, in order.  Batching is what keeps the RPC count per query at
    "one per peer per rewriting" instead of "one per index probe".

``insert(peer, relation, rows)``
    Appends rows at the owning peer (moves its version token).  Exists so
    live-write workloads — and the chaos tests — can mutate remote data
    through the same boundary they query through.

``close()``
    Releases backend resources (worker processes, pipes).

Failures are reported as :class:`~repro.errors.TransportError`; *data*
errors (an arity clash detected by the remote index) surface as
``ValueError`` exactly like a local probe, so the planner's error paths
stay transport-agnostic.

:class:`LoopbackTransport` serves live in-process instances with zero
copying — and doubles as the chaos harness: ``delay`` injects per-RPC
latency, ``fail_peer`` makes one peer unreachable, and ``drop_every_n``
drops every n-th scan RPC.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Sequence, Tuple

from ...database.instance import Instance
from ...datalog.indexing import WILDCARD, Pattern
from ...errors import TransportError
from ...obs.metrics import METRICS_SCHEMA_VERSION
from ...obs.trace import ServeSpan, current_wire_context, get_tracer

Row = Tuple[object, ...]

#: A wire-encoded pattern entry: ``("*",)`` for a wildcard position or
#: ``("=", value)`` for a required value.  ``WILDCARD`` itself is a
#: process-local singleton, so it must never cross the wire.
EncodedEntry = Tuple[object, ...]
EncodedPattern = Tuple[EncodedEntry, ...]

#: One scan request on the wire: ``(relation, encoded pattern)``.
ScanRequest = Tuple[str, EncodedPattern]

#: A delta-capable scan request: ``(relation, encoded pattern, since)``.
#: ``since`` is the version token of the caller's memoized full scan, or
#: ``None`` for an unconditional full scan.
SinceScanRequest = Tuple[str, EncodedPattern, object]

#: One delta-capable scan response: ``(full, token, rows)``.  ``full`` is
#: ``True`` when ``rows`` is a complete rescan, ``False`` when it is only
#: the rows added since the request's ``since`` token; ``token`` is the
#: relation's version token *at or before* the scan (so merging the rows
#: into the memo keyed by ``token`` never claims data it does not hold).
ScanSinceResult = Tuple[bool, object, Tuple[Row, ...]]

#: ``describe`` response entry: ``(arity, cardinality, version token)``.
RelationInfo = Tuple[int, int, object]


class TraceEnvelope:
    """A traced RPC reply: the real value plus worker-side span records.

    Remote backends (process, socket) wrap their reply in one of these
    *only* when the request carried a wire trace context — an untraced
    request (the default, and everything an old client sends) gets the
    bare value, so the reply format is exactly as before unless both
    ends opted in.  The client-side transport method unwraps the
    envelope and grafts the records into the caller's trace before
    returning, so nothing above the transport layer ever sees one.
    """

    __slots__ = ("value", "spans")

    def __init__(self, value, spans):
        self.value = value
        self.spans = spans

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEnvelope({self.value!r}, {len(self.spans)} spans)"


def traced_reply(value, span: "ServeSpan"):
    """Envelope a serve-side reply with its span — only when one recorded.

    Untraced requests (including everything an old client sends) get the
    bare value, keeping the reply format byte-compatible; a traced
    request gets a :class:`TraceEnvelope` the new client unwraps.
    """
    records = span.records()
    return TraceEnvelope(value, records) if records else value


def unwrap_envelope(reply):
    """Unwrap a possibly-enveloped reply, adopting its worker spans.

    Tolerant by design: a bare reply (old peer, untraced request) passes
    through unchanged, which is the wire-compatibility contract.
    """
    if isinstance(reply, TraceEnvelope):
        if reply.spans:
            get_tracer().adopt(reply.spans)
        return reply.value
    return reply


def encode_pattern(pattern: Pattern) -> EncodedPattern:
    """Encode a probe pattern for the wire (wildcards made explicit).

    ``None`` is a legal data value, and :data:`WILDCARD` is a process-local
    singleton, so each position is tagged: ``("*",)`` means unconstrained,
    ``("=", value)`` means the row must carry ``value`` there.
    """
    return tuple(
        ("*",) if entry is WILDCARD else ("=", entry) for entry in pattern
    )


def decode_pattern(encoded: EncodedPattern) -> Pattern:
    """Decode a wire pattern back into the local probe representation."""
    decoded: List[object] = []
    for entry in encoded:
        if entry[0] == "*":
            decoded.append(WILDCARD)
        elif entry[0] == "=":
            decoded.append(entry[1])
        else:
            raise TransportError(f"malformed wire pattern entry {entry!r}")
    return tuple(decoded)


def describe_instance(instance: Instance) -> Dict[str, RelationInfo]:
    """One instance's ``describe`` catalog — the single wire shape.

    Shared by every backend (loopback serves it directly, the process
    worker builds it remotely), so the catalog format cannot drift
    between transports.  Relations whose arity is unknown are skipped —
    they cannot be probed by any atom.
    """
    info: Dict[str, RelationInfo] = {}
    for relation in instance.relations():
        arity = instance.arity(relation)
        if arity is None:
            continue
        info[relation] = (
            arity,
            instance.cardinality(relation),
            instance.data_version(relation),
        )
    return info


def scan_instance_since(
    instance: Instance, relation: str, encoded: EncodedPattern, since: object
) -> ScanSinceResult:
    """Serve one delta-capable scan request against a live instance.

    The single server-side delta implementation, shared by every backend
    (loopback serves it directly, the process worker and the socket
    server run it remotely), so the delta contract cannot drift:

    * ``since`` matching the current token exactly → empty delta
      (``full=False``) — the near-constant-size rescan;
    * ``since`` from this instance with additive history available
      (:meth:`~repro.database.instance.Instance.rows_since`) → only the
      rows added since, filtered by the pattern (``full=False``);
    * anything else (foreign token, removals, log overflow) → a full
      rescan (``full=True``).

    Delta rows whose width clashes with the probing pattern raise
    :class:`ValueError`, matching the full-scan data-error contract.
    """
    pattern = decode_pattern(encoded)
    token = instance.data_version(relation)
    if (
        isinstance(since, tuple)
        and len(since) == 2
        and since[0] == token[0]
        and isinstance(since[1], int)
    ):
        if since[1] == token[1]:
            return (False, token, ())
        rows_since = getattr(instance, "rows_since", None)
        delta = rows_since(relation, since[1]) if rows_since is not None else None
        if delta is not None:
            width = len(pattern)
            matched: List[Row] = []
            for row in delta:
                if len(row) != width:
                    raise ValueError(
                        f"relation {relation!r} holds a row of width "
                        f"{len(row)} but the probing atom has arity {width}"
                    )
                if all(
                    entry is WILDCARD or row[i] == entry
                    for i, entry in enumerate(pattern)
                ):
                    matched.append(row)
            return (False, token, tuple(matched))
    return (True, token, tuple(instance.get_matching(relation, pattern)))


class Transport(Protocol):
    """The peer-boundary RPC contract (see the module docstring)."""

    def peers(self) -> Tuple[str, ...]:  # pragma: no cover - protocol
        ...

    def describe(self, peer: str) -> Dict[str, RelationInfo]:  # pragma: no cover
        ...

    def scan_batch(
        self, peer: str, requests: Sequence[ScanRequest]
    ) -> List[Tuple[Row, ...]]:  # pragma: no cover - protocol
        ...

    def scan_batch_since(
        self, peer: str, requests: Sequence[SinceScanRequest]
    ) -> List[ScanSinceResult]:  # pragma: no cover - protocol
        ...

    def insert(
        self, peer: str, relation: str, rows: Iterable[Row]
    ) -> int:  # pragma: no cover - protocol
        ...

    def close(self) -> None:  # pragma: no cover - protocol
        ...


class TransportBase:
    """Shared chaos-injection and traffic-accounting state for backends.

    Subclasses provide the wire; this base owns the injected-failure set
    (:meth:`fail_peer` / :meth:`restore_peer`), the per-peer scan
    counters, the RPC counter, and the context-manager/closed flag, so
    failure accounting and chaos semantics cannot drift between
    backends.  Backends with an additional notion of brokenness (e.g. a
    tripped timeout circuit) override :meth:`_broken_peers`.
    """

    def __init__(self, peers: Iterable[str]):
        self._failed: set = set()
        self._lock = threading.Lock()
        self._scan_counts: Dict[str, int] = {name: 0 for name in peers}
        self._peer_delays: Dict[str, float] = {}
        self._rpc_count = 0
        self._closed = False

    # -- chaos hooks -------------------------------------------------------

    def fail_peer(self, peer: str) -> None:
        """Make ``peer`` unreachable until :meth:`restore_peer`."""
        with self._lock:
            self._failed.add(peer)

    def restore_peer(self, peer: str) -> None:
        """Bring a failed peer back (circuit-broken peers stay broken)."""
        with self._lock:
            self._failed.discard(peer)

    def set_peer_delay(self, peer: str, seconds: float) -> None:
        """Inject extra per-RPC latency for one peer (0 clears it).

        The chaos hook behind the tail-latency scenarios: slow exactly
        one replica and watch hedging route around it.
        """
        with self._lock:
            if seconds > 0:
                self._peer_delays[peer] = seconds
            else:
                self._peer_delays.pop(peer, None)

    def peer_delay(self, peer: str) -> float:
        """The injected extra latency for ``peer`` (seconds)."""
        with self._lock:
            return self._peer_delays.get(peer, 0.0)

    def _broken_peers(self) -> Iterable[str]:
        """Peers broken by the backend itself (beyond injected failures)."""
        return ()

    def failed_peers(self) -> Tuple[str, ...]:
        """Peers injected as failed or broken by the backend."""
        with self._lock:
            return tuple(sorted(self._failed | set(self._broken_peers())))

    # -- introspection -----------------------------------------------------

    def scan_count(self, peer: str) -> int:
        """Individual scan requests served for ``peer`` so far."""
        with self._lock:
            return self._scan_counts.get(peer, 0)

    def _count_scans(self, peer: str, count: int) -> None:
        with self._lock:
            self._scan_counts[peer] = self._scan_counts.get(peer, 0) + count

    @property
    def rpc_count(self) -> int:
        """Total RPCs attempted across all peers and operations."""
        return self._rpc_count

    def transport_metrics(self) -> Dict[str, object]:
        """Schema-versioned traffic counters for the metrics registry.

        The transport's ad-hoc accounting (RPC total, per-peer scan
        counts, injected/broken peers) in the uniform collector shape —
        a fresh dict each call, safe to mutate.
        """
        with self._lock:
            return {
                "schema_version": METRICS_SCHEMA_VERSION,
                "rpc_count": self._rpc_count,
                "scan_counts": dict(self._scan_counts),
                "failed_peers": sorted(
                    self._failed | set(self._broken_peers())
                ),
            }

    # -- delta scans -------------------------------------------------------

    def scan_batch_since(
        self, peer: str, requests: Sequence[SinceScanRequest]
    ) -> List[ScanSinceResult]:
        """Delta-capable scan batch; the base falls back to full scans.

        Backends without a delta implementation serve every request as a
        full rescan through their (possibly subclass-overridden)
        :meth:`scan_batch`, with no version token — callers then simply
        never send a ``since`` cursor to this backend.
        """
        rows = self.scan_batch(  # type: ignore[attr-defined]
            peer, [(relation, encoded) for relation, encoded, _ in requests]
        )
        return [(True, None, result) for result in rows]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class LoopbackTransport(TransportBase):
    """Zero-copy transport over live in-process peer instances.

    The reference backend: scans route straight to the owning
    :class:`~repro.database.instance.Instance` (including its maintained
    hash indexes) with no serialization, so it is both the fastest way to
    run the ``"distributed"`` engine and the baseline the process backend
    is measured against.

    It is also the chaos harness.  Three injection hooks, all safe to
    flip at runtime:

    ``delay``
        Seconds slept inside every RPC (simulated wire latency; applies
        to ``describe`` and ``scan_batch``).
    ``fail_peer(name)`` / ``restore_peer(name)``
        While failed, every RPC to the peer raises
        :class:`~repro.errors.TransportError` — an unreachable peer.
    ``drop_every_n``
        When set to *n* > 0, every n-th ``scan_batch`` RPC (counted
        transport-wide) raises — transient packet-loss-style faults.
    ``row_cost``
        Seconds slept per row returned by a ``scan_batch`` (simulated
        wire-transfer time, proportional to payload).  Like ``delay`` the
        sleep releases the GIL, so per-shard scans issued concurrently
        overlap — which is exactly how sharding wins wall-clock time on
        the benchmark workloads.

    Per-peer scan counters (:meth:`scan_count`) count individual scan
    requests served, for the examples' per-peer traffic reports.
    """

    def __init__(
        self,
        instances: Mapping[str, Instance],
        delay: float = 0.0,
        drop_every_n: int = 0,
        row_cost: float = 0.0,
    ):
        self._instances: Dict[str, Instance] = dict(instances)
        super().__init__(self._instances)
        self.delay = delay
        self.drop_every_n = drop_every_n
        self.row_cost = row_cost
        self._scan_rpc_count = 0

    # -- introspection -----------------------------------------------------

    def instance(self, peer: str) -> Instance:
        """The live instance behind ``peer`` (tests mutate data through it)."""
        return self._instances[peer]

    @property
    def prefers_parallel(self) -> bool:
        """Scatter hint: threads only pay off once RPCs have latency.

        Zero-latency loopback RPCs are plain function calls under the
        GIL — a thread pool adds overhead and wins nothing — so the
        remote source scatters sequentially unless latency (per RPC or
        per row, globally or per peer) is injected.
        """
        return self.delay > 0 or self.row_cost > 0 or bool(self._peer_delays)

    # -- the wire ----------------------------------------------------------

    def _enter_rpc(self, peer: str, scan: bool = False) -> None:
        if self._closed:
            raise TransportError("transport is closed", peer=peer)
        with self._lock:
            self._rpc_count += 1
            if peer in self._failed:
                raise TransportError(f"peer {peer!r} is unreachable", peer=peer)
            if peer not in self._instances:
                raise TransportError(f"unknown peer {peer!r}", peer=peer)
            if scan:
                self._scan_rpc_count += 1
                if self.drop_every_n and self._scan_rpc_count % self.drop_every_n == 0:
                    raise TransportError(
                        f"scan RPC to {peer!r} dropped (injected)", peer=peer
                    )
        if self.delay > 0:
            time.sleep(self.delay)
        extra = self.peer_delay(peer)
        if extra > 0:
            time.sleep(extra)

    def peers(self) -> Tuple[str, ...]:
        return tuple(self._instances)

    def describe(self, peer: str) -> Dict[str, RelationInfo]:
        self._enter_rpc(peer)
        return describe_instance(self._instances[peer])

    def scan_batch(
        self, peer: str, requests: Sequence[ScanRequest]
    ) -> List[Tuple[Row, ...]]:
        # Loopback's server side is the caller's own process, so a traced
        # request grafts its serve span straight into the live tracer —
        # no envelope ever crosses this "wire".
        span = ServeSpan(
            current_wire_context(), "rpc.serve.scan",
            peer=peer, transport="loopback",
        )
        try:
            with span:
                self._enter_rpc(peer, scan=True)
                instance = self._instances[peer]
                results: List[Tuple[Row, ...]] = []
                for relation, encoded in requests:
                    pattern = decode_pattern(encoded)
                    # ValueError (arity clash against the probing atom)
                    # propagates as-is: it is a data error, not a
                    # transport fault.
                    results.append(
                        tuple(instance.get_matching(relation, pattern))
                    )
                self._count_scans(peer, len(requests))
                if span.recording:
                    span.set("requests", len(requests))
                    span.set("rows", sum(len(rows) for rows in results))
                if self.row_cost > 0:
                    time.sleep(
                        self.row_cost * sum(len(rows) for rows in results)
                    )
                return results
        finally:
            if span.record is not None:
                get_tracer().adopt(span.records())

    def scan_batch_since(
        self, peer: str, requests: Sequence[SinceScanRequest]
    ) -> List[ScanSinceResult]:
        """Delta-capable scans against the live instance.

        When a subclass overrides :meth:`scan_batch` (the chaos and
        probing tests do), or when no request carries a cursor, the scan
        is routed through that polymorphic :meth:`scan_batch` so the
        override keeps seeing every wire scan; version tokens are read
        *before* the scan, so a racing insert can only make the token
        stale (re-shipping rows the memo already holds — harmless after
        the merge dedup), never too new.
        """
        uses_base_scan = type(self).scan_batch is LoopbackTransport.scan_batch
        if not uses_base_scan or all(since is None for _, _, since in requests):
            instance = self._instances.get(peer)
            tokens = (
                {relation: instance.data_version(relation)
                 for relation, _, _ in requests}
                if instance is not None else {}
            )
            rows = self.scan_batch(
                peer, [(relation, encoded) for relation, encoded, _ in requests]
            )
            return [
                (True, tokens.get(relation), result)
                for (relation, _, _), result in zip(requests, rows)
            ]
        span = ServeSpan(
            current_wire_context(), "rpc.serve.scan_since",
            peer=peer, transport="loopback",
        )
        try:
            with span:
                self._enter_rpc(peer, scan=True)
                instance = self._instances[peer]
                results = [
                    scan_instance_since(instance, relation, encoded, since)
                    for relation, encoded, since in requests
                ]
                self._count_scans(peer, len(requests))
                if span.recording:
                    span.set("requests", len(requests))
                    span.set(
                        "rows", sum(len(rows) for _, _, rows in results)
                    )
                if self.row_cost > 0:
                    time.sleep(
                        self.row_cost * sum(len(rows) for _, _, rows in results)
                    )
                return results
        finally:
            if span.record is not None:
                get_tracer().adopt(span.records())

    def insert(self, peer: str, relation: str, rows: Iterable[Row]) -> int:
        span = ServeSpan(
            current_wire_context(), "rpc.serve.insert",
            peer=peer, transport="loopback", relation=relation,
        )
        try:
            with span:
                self._enter_rpc(peer)
                instance = self._instances[peer]
                count = 0
                for row in rows:
                    instance.add(relation, row)
                    count += 1
                if span.recording:
                    span.set("rows", count)
                return count
        finally:
            if span.record is not None:
                get_tracer().adopt(span.records())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LoopbackTransport({len(self._instances)} peers, "
            f"{self._rpc_count} rpcs)"
        )
