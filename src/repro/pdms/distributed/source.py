"""A federated fact source over a peer-boundary transport.

:class:`RemotePeerFactSource` is the remote twin of
:class:`~repro.pdms.execution.PeerFactSource`: it implements the
:class:`~repro.datalog.indexing.IndexedFactSource` protocol — plus the
``data_version`` / ``cardinality`` extensions the planner and the
:class:`~repro.pdms.materialization.FragmentCache` rely on — by routing
every probe through a :class:`~repro.pdms.distributed.transport.Transport`
instead of touching live instances.  Planning, fragment sharing, and
version-keyed caching therefore work unchanged across the process
boundary.

Three mechanisms keep the RPC count sane and the semantics honest:

* **Scan memoization** — every ``(relation, pattern)`` scan result is
  memoized until :meth:`refresh` observes the relation's wire-fetched
  version token move.  The join engine's inner loop repeats identical
  probes constantly; each distinct probe crosses the wire once per data
  version, and batched prefetch (:meth:`prefetch`) fetches a whole
  rewriting's scans in one scatter-gather round.
* **Version tokens over the wire** — ``describe`` ships each relation's
  data-version token from the owning peer, and the combined token keeps
  the :class:`~repro.pdms.materialization.FragmentCache` invalidation
  contract: a remote write moves the token, peer churn changes the owner
  set, and stale fragments stop being served.
* **Degradation, not failure** — a scan lost to a
  :class:`~repro.errors.TransportError` contributes no rows (a *sound
  subset* under monotone conjunctive queries), records a
  :class:`ScanFailure`, and marks the relation *degraded*:
  :meth:`data_version` answers ``None`` for degraded relations so no
  partial fragment can be admitted to a version-keyed cache, and the
  partial memo entry is discarded at the next :meth:`refresh`.  Data
  errors (arity clashes) still raise, exactly like a local probe.

The tail-latency layer sits on top (see ``docs/distributed.md``, "Tail
latency").  Scans are organised into *units* — one per shard placement
group, each listing the replicas that can serve it — and every unit runs
under a :class:`~repro.pdms.distributed.hedging.ScanPolicy`:

* **retries** — a unit lost to a ``TransportError`` is re-attempted
  (bounded, exponential backoff + jitter), rotating across the group's
  replicas; a scan that succeeds on retry records *no* failure, so
  ``complete`` is re-earned instead of permanently degraded, and a unit
  that exhausts its attempts is counted **once**, not once per attempt;
* **hedging** — when a replica exists and the primary exceeds the hedge
  delay (fixed ``REPRO_HEDGE_MS``, or the primary's tracked p95), a
  duplicate request is fired at the next replica; first success wins and
  the loser is cancelled;
* **deadlines** — ``REPRO_SCAN_DEADLINE_MS`` bounds a whole prefetch
  wave; units still unfinished at expiry degrade honestly, exactly like
  a transport fault;
* **delta re-scans** — per-peer scan results are memoized with their
  version token, and re-scans send that token as a ``since`` cursor so
  an advanced peer ships only its newly added rows
  (:func:`~repro.pdms.distributed.transport.scan_instance_since`); the
  merged result equals a full rescan by the monotone-log contract.

The source is thread-safe; one instance may serve many concurrent query
executions (see :class:`~repro.pdms.distributed.cluster.ServiceCluster`).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, CancelledError
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...datalog.indexing import WILDCARD, Pattern
from ...errors import MappingError, TransportError
from ...config import distributed_workers as _config_distributed_workers
from ...obs.metrics import METRICS_SCHEMA_VERSION
from ...obs.trace import NULL_SPAN, current_span, wire_context
from .hedging import PeerLatencyTracker, ScanPolicy
from .transport import EncodedPattern, RelationInfo, Row, Transport, encode_pattern


class _DeadlineExpired(Exception):
    """Internal: the wave's deadline budget ran out mid-unit."""


@dataclass(frozen=True)
class ScanFailure:
    """One scan (or metadata fetch) lost to a transport fault."""

    peer: str
    relation: str
    error: str


def distributed_workers_from_env() -> int:
    """Scatter width from ``REPRO_DISTRIBUTED_WORKERS`` (0 = auto).

    Auto sizes the pool to the peer count (capped at 16).  Malformed
    values fail fast like every ``REPRO_*`` knob — delegates to the
    consolidated reader (:func:`repro.config.distributed_workers`).
    """
    return _config_distributed_workers()


class RemotePeerFactSource:
    """Indexed fact source federating probes over a transport.

    Parameters
    ----------
    transport:
        The peer boundary to probe through.
    peers:
        Subset of the transport's peers to serve (default: all).
    shard_map:
        Optional :class:`~repro.pdms.distributed.sharding.ShardMap`
        describing how relations are horizontally partitioned across the
        transport's peers.  When present, scans whose pattern binds the
        partition column to a constant are *pruned* to the owning shard
        group instead of fanning out to every owner; everything else is
        unchanged — per-shard version tokens already combine into the
        composite token via the sorted-token aggregation below.
    policy:
        The :class:`~repro.pdms.distributed.hedging.ScanPolicy` governing
        retries, hedging, and deadlines (default: from the ``REPRO_*``
        environment knobs).
    delta:
        When ``True`` (the default), re-scans send the memoized version
        token as a ``since`` cursor so peers can ship deltas instead of
        full rescans; ``False`` forces full rescans (benchmark baseline).

    Construction performs the first :meth:`refresh` — one ``describe``
    round per peer establishing the relation routing table (with the same
    eager cross-peer arity-clash check the in-process federated source
    performs), per-relation cardinalities for the cost model, and the
    version tokens the scan memo and fragment caches key on.
    """

    def __init__(
        self,
        transport: Transport,
        peers: Optional[Iterable[str]] = None,
        shard_map: Optional[object] = None,
        policy: Optional[ScanPolicy] = None,
        delta: bool = True,
    ):
        self._transport = transport
        self._shard_map = shard_map
        self._policy = policy if policy is not None else ScanPolicy.from_env()
        self._delta = delta
        self._peer_names: Tuple[str, ...] = (
            tuple(peers) if peers is not None else tuple(transport.peers())
        )
        self._lock = threading.RLock()
        self._routes: Dict[str, Tuple[str, ...]] = {}
        self._arities: Dict[str, int] = {}
        self._cards: Dict[str, int] = {}
        self._tokens: Dict[str, Tuple[object, ...]] = {}
        self._memo: Dict[Tuple[str, EncodedPattern], Tuple[Row, ...]] = {}
        #: Per-(peer, relation, pattern) delta cursors: the version token
        #: of the last scan served by that peer plus the merged rows it
        #: covered.  Anchored to wire version tokens (not generations):
        #: the server validates the cursor against its live version, so a
        #: stale cursor can only re-ship rows, never lose them.
        self._peer_scans: Dict[
            Tuple[str, str, EncodedPattern], Tuple[object, Tuple[Row, ...]]
        ] = {}
        #: Bumped by every refresh() that invalidated something; scans
        #: committed to the memo only if the generation they started under
        #: is still current, so rows fetched before an invalidating
        #: refresh can never be re-inserted after it dropped them.
        self._generation = 0
        self._degraded: Set[str] = set()
        self._unreachable: Set[str] = set()
        self._failures: List[ScanFailure] = []
        self._tracker = PeerLatencyTracker()
        self._pruned_scans = 0
        self._fanout_scans = 0
        self._pruned_waves = 0
        self._fanout_waves = 0
        self._retries = 0
        self._hedges_fired = 0
        self._hedges_won = 0
        self._deadline_expiries = 0
        self._delta_scans = 0
        self._full_scans = 0
        self._delta_rows = 0
        self._full_rows = 0
        self._executor = None
        self._attempt_executor = None
        self._closed = False
        self.refresh()

    # -- metadata ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise TransportError("RemotePeerFactSource is closed")

    def refresh(self) -> None:
        """Re-fetch peer catalogs; drop memo entries whose version moved.

        The describe round happens outside the lock, so concurrent
        refreshes overlap on the wire; the commit — routing table, version
        tokens, memo invalidation, clearing the degraded set — is atomic.
        An unreachable peer is recorded as a :class:`ScanFailure` (its
        relations drop out of the routing table, which itself moves the
        affected version tokens) rather than raising.  A cross-peer arity
        clash raises :class:`~repro.errors.MappingError` naming both
        peers, exactly like the in-process federated source.
        """
        self._check_open()
        catalogs: Dict[str, Dict[str, RelationInfo]] = {}
        unreachable: Dict[str, str] = {}
        for peer in self._peer_names:
            try:
                catalogs[peer] = self._describe_with_retry(peer)
            except TransportError as exc:
                unreachable[peer] = str(exc)
        routes: Dict[str, List[str]] = {}
        arities: Dict[str, int] = {}
        cards: Dict[str, int] = {}
        tokens: Dict[str, List[object]] = {}
        first_seen: Dict[str, Tuple[str, int]] = {}
        for peer, catalog in catalogs.items():
            for relation, (arity, cardinality, token) in catalog.items():
                earlier = first_seen.get(relation)
                if earlier is None:
                    first_seen[relation] = (peer, arity)
                elif earlier[1] != arity:
                    raise MappingError(
                        f"stored relation {relation!r} has arity {earlier[1]} "
                        f"at peer {earlier[0]!r} but arity {arity} at peer "
                        f"{peer!r}"
                    )
                routes.setdefault(relation, []).append(peer)
                arities[relation] = arity
                cards[relation] = cards.get(relation, 0) + cardinality
                tokens.setdefault(relation, []).append(token)
        with self._lock:
            for peer, error in unreachable.items():
                self._failures.append(ScanFailure(peer, "*", error))
            self._unreachable = set(unreachable)
            new_tokens = {
                relation: tuple(sorted(per_peer, key=repr))
                for relation, per_peer in tokens.items()
            }
            stale = {
                relation
                for relation in set(self._tokens) | set(new_tokens)
                if self._tokens.get(relation) != new_tokens.get(relation)
            }
            stale |= self._degraded
            if stale:
                self._memo = {
                    key: rows
                    for key, rows in self._memo.items()
                    if key[0] not in stale
                }
                self._generation += 1
            self._degraded = set()
            self._routes = {rel: tuple(owners) for rel, owners in routes.items()}
            self._arities = arities
            self._cards = cards
            self._tokens = new_tokens
            # Delta cursors for vanished relations are dead weight (and a
            # relation that later returns may be different data); drop
            # them.  Cursors for live relations survive refresh — they
            # are what turns the post-refresh rescan into a delta.
            if self._peer_scans:
                live = self._routes
                self._peer_scans = {
                    cursor_key: value
                    for cursor_key, value in self._peer_scans.items()
                    if cursor_key[1] in live
                }

    def _describe_with_retry(self, peer: str) -> Dict[str, RelationInfo]:
        """One peer's catalog, with the policy's transient-fault retries."""
        policy = self._policy
        last_error: Optional[TransportError] = None
        for attempt in range(policy.retries + 1):
            if attempt:
                time.sleep(policy.backoff_delay(attempt - 1))
            try:
                return self._transport.describe(peer)
            except TransportError as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    @property
    def shard_map(self) -> Optional[object]:
        """The placement map scans are pruned against (``None`` = unsharded)."""
        return self._shard_map

    def scatter_stats(self) -> Dict[str, int]:
        """Scatter and tail-latency counters (monotone since construction).

        ``pruned_scans`` / ``fanout_scans`` count individual wire scans by
        whether shard pruning narrowed the owner set below the full route;
        ``pruned_waves`` / ``fanout_waves`` count :meth:`prefetch` rounds
        that fetched anything, a wave being *pruned* only when every scan
        in it was.  The tail-latency layer adds: ``retries`` (re-attempts
        after a transport fault), ``hedges_fired`` / ``hedges_won``
        (duplicate requests issued, and how many beat the primary),
        ``deadline_expiries`` (scan units abandoned at the wave
        deadline), ``delta_scans`` / ``full_scans`` (wire scans answered
        as a delta vs a full rescan) and ``delta_rows_shipped`` /
        ``full_rows_shipped`` (rows carried by each kind).
        """
        with self._lock:
            return {
                "schema_version": METRICS_SCHEMA_VERSION,
                "pruned_scans": self._pruned_scans,
                "fanout_scans": self._fanout_scans,
                "pruned_waves": self._pruned_waves,
                "fanout_waves": self._fanout_waves,
                "retries": self._retries,
                "hedges_fired": self._hedges_fired,
                "hedges_won": self._hedges_won,
                "deadline_expiries": self._deadline_expiries,
                "delta_scans": self._delta_scans,
                "full_scans": self._full_scans,
                "delta_rows_shipped": self._delta_rows,
                "full_rows_shipped": self._full_rows,
            }

    def latency_stats(self) -> Dict[str, object]:
        """Per-peer scan-latency EWMA snapshot (count, mean, p95; ms)."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "peers": self._tracker.snapshot(),
        }

    def bind_metrics(self, registry) -> None:
        """Register this source's snapshots as pull collectors.

        The registry holds the bound methods weakly (see
        :meth:`~repro.obs.metrics.MetricsRegistry.register_collector`), so
        binding never extends the source's lifetime; a closed/collected
        source simply drops out of later snapshots.
        """
        registry.register_collector("scatter", self.scatter_stats)
        registry.register_collector("peer_latency", self.latency_stats)
        registry.register_collector("scan_policy", self._policy.as_dict)
        if self._shard_map is not None:
            as_dict = getattr(self._shard_map, "as_dict", None)
            if callable(as_dict):
                registry.register_collector("sharding", as_dict)
        transport_metrics = getattr(self._transport, "transport_metrics", None)
        if callable(transport_metrics):
            registry.register_collector("transport", transport_metrics)

    def relations(self) -> Tuple[str, ...]:
        """Stored relations currently reachable through this source."""
        with self._lock:
            return tuple(self._routes)

    def owner_count(self, relation: str) -> int:
        """How many peers serve ``relation`` (0 if unknown/unreachable)."""
        with self._lock:
            return len(self._routes.get(relation, ()))

    def owners(self, relation: str) -> Tuple[str, ...]:
        """The peers currently serving ``relation`` (write routing uses this)."""
        with self._lock:
            return self._routes.get(relation, ())

    def arity(self, relation: str) -> Optional[int]:
        """Arity of ``relation`` as described by its owners, if known."""
        with self._lock:
            return self._arities.get(relation)

    def cardinality(self, relation: str) -> int:
        """Total row count across owners, as of the last refresh."""
        with self._lock:
            return self._cards.get(relation, 0)

    def data_version(self, relation: str) -> Optional[Tuple[object, ...]]:
        """The combined wire-fetched version token of ``relation``.

        ``None`` for *degraded* relations (a scan failed since the last
        refresh) — version-keyed caches must bypass them, because a
        fragment computed from partial rows under an unchanged token
        would later be served as complete.  Unknown relations yield the
        empty tuple, like the in-process federated source.
        """
        with self._lock:
            if relation in self._degraded:
                return None
            return self._tokens.get(relation, ())

    # -- health ------------------------------------------------------------

    @property
    def failure_count(self) -> int:
        """Monotone count of transport faults observed (snapshot windows)."""
        with self._lock:
            return len(self._failures)

    def failures(self, since: int = 0) -> Tuple[ScanFailure, ...]:
        """Failures recorded after index ``since`` (see ``failure_count``)."""
        with self._lock:
            return tuple(self._failures[since:])

    @property
    def degraded_relations(self) -> Tuple[str, ...]:
        """Relations whose current memo window lost at least one scan."""
        with self._lock:
            return tuple(sorted(self._degraded))

    @property
    def unreachable_peers(self) -> Tuple[str, ...]:
        """Peers whose last describe round failed."""
        with self._lock:
            return tuple(sorted(self._unreachable))

    @property
    def complete(self) -> bool:
        """Is the current view fault-free (no degradation, all peers up)?"""
        with self._lock:
            return not self._degraded and not self._unreachable

    def drop_memo(self) -> int:
        """Forget every memoized scan (testing/benchmark hook).

        Simulates a genuinely cold consumer, so the delta cursors go
        too — otherwise the next "cold" scan would ride a surviving
        cursor and ship an empty delta instead of the full relation.
        """
        with self._lock:
            dropped = len(self._memo)
            self._memo.clear()
            self._peer_scans.clear()
            return dropped

    # -- scanning ----------------------------------------------------------

    def _scatter_width(self) -> int:
        configured = distributed_workers_from_env()
        if configured:
            return configured
        return min(16, max(2, len(self._peer_names)))

    def _pool(self):
        with self._lock:
            self._check_open()
            if self._executor is None:
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(
                    max_workers=self._scatter_width(),
                    thread_name_prefix="repro-scatter",
                )
            return self._executor

    def _attempt_pool(self):
        """A second executor for hedged attempts.

        Hedged duplicates must not share the scatter pool: a wave that
        fills the scatter pool with units would deadlock waiting for its
        own attempts.  Transports with a native :meth:`submit_scan`
        (the async socket backend) bypass this pool entirely.
        """
        with self._lock:
            self._check_open()
            if self._attempt_executor is None:
                from concurrent.futures import ThreadPoolExecutor

                self._attempt_executor = ThreadPoolExecutor(
                    max_workers=max(4, self._scatter_width() * 2),
                    thread_name_prefix="repro-hedge",
                )
            return self._attempt_executor

    def _record_failure(self, peer: str, relations: Iterable[str], error: str) -> None:
        with self._lock:
            for relation in relations:
                self._failures.append(ScanFailure(peer, relation, error))
                self._degraded.add(relation)

    def _restricted_owners(
        self,
        relation: str,
        owners_restriction: Optional[Iterable[str]],
    ) -> Tuple[Tuple[str, ...], bool]:
        """(owners to scan, was the route set narrowed?) — lock held.

        ``owners_restriction`` is a shard-pruning hint (the peer group a
        constant bound on the partition column resolves to); owners
        outside the current routing table are dropped — a peer that left
        holds no rows, so intersecting stays a sound *complete* scan of
        what remains reachable (degradation is tracked separately).
        """
        routes = self._routes.get(relation, ())
        if owners_restriction is None:
            return routes, False
        allowed = set(owners_restriction)
        owners = tuple(owner for owner in routes if owner in allowed)
        return owners, len(owners) < len(routes)

    def _scan_groups(
        self,
        relation: str,
        pattern: Pattern,
        owners_restriction: Optional[Iterable[str]],
    ) -> Tuple[Tuple[Tuple[str, ...], ...], bool]:
        """(replica groups to scan, was the route set narrowed?) — lock held.

        Each returned group lists the live replicas of one shard; any
        one member answers for the whole group, which is what makes
        hedging and retry-rotation across the group sound.  Unsharded
        relations degenerate to one single-member group per owner (every
        owner may hold distinct rows, so all must be scanned).
        """
        routes = self._routes.get(relation, ())
        shard_map = self._shard_map
        if shard_map is not None:
            raw_groups = shard_map.groups_for_pattern(relation, pattern)
            if raw_groups is not None:
                live = set(routes)
                groups = tuple(
                    live_group
                    for group in raw_groups
                    if (live_group := tuple(p for p in group if p in live))
                )
                covered = {peer for group in groups for peer in group}
                return groups, len(covered) < len(routes)
        owners, pruned = self._restricted_owners(relation, owners_restriction)
        return tuple((owner,) for owner in owners), pruned

    # -- one scan unit: retries, hedging, deadline -------------------------

    def _deadline_at(self) -> Optional[float]:
        deadline = self._policy.deadline
        return time.monotonic() + deadline if deadline else None

    @staticmethod
    def _remaining(deadline_at: Optional[float]) -> Optional[float]:
        return None if deadline_at is None else deadline_at - time.monotonic()

    def _build_since_requests(
        self, peer: str, keys: Sequence[Tuple[str, EncodedPattern]]
    ):
        """The wire batch for ``peer`` plus the delta baselines it rides on."""
        with self._lock:
            baselines = {
                key: self._peer_scans.get((peer, key[0], key[1]))
                for key in keys
            }
        requests = [
            (
                key[0],
                key[1],
                baselines[key][0]
                if (self._delta and baselines[key] is not None)
                else None,
            )
            for key in keys
        ]
        return requests, baselines

    def _finish_scan(
        self,
        peer: str,
        keys: Sequence[Tuple[str, EncodedPattern]],
        baselines: Dict[Tuple[str, EncodedPattern], Optional[Tuple[object, Tuple[Row, ...]]]],
        results,
        elapsed: float,
    ) -> Dict[Tuple[str, EncodedPattern], Tuple[Row, ...]]:
        """Merge one successful wire response into the delta cursors."""
        self._tracker.observe(peer, elapsed)
        out: Dict[Tuple[str, EncodedPattern], Tuple[Row, ...]] = {}
        delta_scans = full_scans = delta_rows = full_rows = 0
        commits = []
        for key, (full, token, rows) in zip(keys, results):
            base = baselines.get(key)
            if not full and base is not None:
                base_rows = base[1]
                known = set(base_rows)
                merged = base_rows + tuple(
                    row for row in rows if row not in known
                )
                delta_scans += 1
                delta_rows += len(rows)
            else:
                merged = tuple(rows)
                full_scans += 1
                full_rows += len(rows)
            out[key] = merged
            if token is not None:
                commits.append(((peer, key[0], key[1]), (token, merged)))
        with self._lock:
            self._delta_scans += delta_scans
            self._full_scans += full_scans
            self._delta_rows += delta_rows
            self._full_rows += full_rows
            for cursor_key, value in commits:
                self._peer_scans[cursor_key] = value
        return out

    def _attempt_scan(
        self,
        peer: str,
        keys: Sequence[Tuple[str, EncodedPattern]],
        parent_span=NULL_SPAN,
        kind: str = "primary",
    ) -> Dict[Tuple[str, EncodedPattern], Tuple[Row, ...]]:
        """One blocking scan attempt (raises ``TransportError`` on fault)."""
        requests, baselines = self._build_since_requests(peer, keys)
        span = parent_span.child(
            "scan.attempt", peer=peer, kind=kind, scans=len(requests)
        )
        start = time.monotonic()
        # The wire context installed around the transport call is what
        # parents the serve-side span under this attempt.
        with span, wire_context(span.wire_context()):
            results = self._transport.scan_batch_since(peer, requests)
        return self._finish_scan(
            peer, keys, baselines, results, time.monotonic() - start
        )

    def _traced_scan_since(self, peer: str, requests, ctx):
        """Transport scan with the caller's wire context re-installed.

        Hedge-pool threads do not inherit the submitting thread's wire
        context (it is thread-local), so it travels as an argument.
        """
        with wire_context(ctx):
            return self._transport.scan_batch_since(peer, requests)

    def _submit_attempt(
        self,
        peer: str,
        keys: Sequence[Tuple[str, EncodedPattern]],
        parent_span=NULL_SPAN,
        kind: str = "primary",
    ):
        """Fire one scan attempt without blocking; returns (future, baselines, start, span).

        Uses the transport's native :meth:`submit_scan` when it has one
        (genuinely cancellable), else the hedge thread pool (cancellation
        is then best-effort abandonment — the losing response is simply
        discarded).  The returned ``scan.attempt`` span is owned by the
        caller racing the future: it must close it exactly once with the
        attempt's outcome (``ok`` / ``error`` / ``cancelled``).  On a
        submit fault the span is closed here and the fault re-raised.
        """
        requests, baselines = self._build_since_requests(peer, keys)
        span = parent_span.child(
            "scan.attempt", peer=peer, kind=kind, scans=len(requests)
        )
        start = time.monotonic()
        submit = getattr(self._transport, "submit_scan", None)
        try:
            if submit is not None:
                # submit_scan captures the wire context on this thread
                # before hopping to the transport's event loop.
                with wire_context(span.wire_context()):
                    future = submit(peer, requests)
            else:
                future = self._attempt_pool().submit(
                    self._traced_scan_since, peer, requests, span.wire_context()
                )
        except Exception:
            span.close("error")
            raise
        return future, baselines, start, span

    def _attempt_with_hedge(
        self,
        primary: str,
        hedge_peer: Optional[str],
        keys: Sequence[Tuple[str, EncodedPattern]],
        deadline_at: Optional[float],
        parent_span=NULL_SPAN,
        kind: str = "primary",
    ) -> Dict[Tuple[str, EncodedPattern], Tuple[Row, ...]]:
        """One attempt, possibly hedged to a replica; first success wins.

        Raises ``TransportError`` when every in-flight request failed
        (the caller's retry loop handles it) and :class:`_DeadlineExpired`
        when the wave budget ran out; data errors propagate as-is.

        Span ownership: this racing loop owns every ``scan.attempt`` span
        :meth:`_submit_attempt` returns, and closes each exactly once —
        on its future's outcome, or as ``cancelled`` in the ``finally``
        sweep that cancels the losers (including deadline expiry, where
        every in-flight attempt is a loser).
        """
        policy = self._policy
        hedge_delay = (
            policy.hedge_delay(self._tracker, primary)
            if hedge_peer is not None
            else None
        )
        if hedge_delay is None and deadline_at is None:
            return self._attempt_scan(primary, keys, parent_span, kind)
        future, baselines, start, span = self._submit_attempt(
            primary, keys, parent_span, kind
        )
        in_flight = {future: (primary, baselines, start, span)}
        hedge_pending = hedge_delay is not None
        errors: List[TransportError] = []
        try:
            while True:
                wait_timeout = hedge_delay if hedge_pending else None
                remaining = self._remaining(deadline_at)
                if remaining is not None:
                    if remaining <= 0:
                        raise _DeadlineExpired()
                    wait_timeout = (
                        remaining
                        if wait_timeout is None
                        else min(wait_timeout, remaining)
                    )
                done, _ = futures_wait(
                    list(in_flight),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    if hedge_pending:
                        # The primary exceeded its hedge delay: duplicate
                        # the request to the replica and race them.
                        hedge_pending = False
                        with self._lock:
                            self._hedges_fired += 1
                        try:
                            h_future, h_base, h_start, h_span = (
                                self._submit_attempt(
                                    hedge_peer, keys, parent_span, "hedge"
                                )
                            )
                            in_flight[h_future] = (
                                hedge_peer, h_base, h_start, h_span
                            )
                        except TransportError:
                            pass  # hedge target down; primary may answer yet
                        continue
                    raise _DeadlineExpired()
                for finished in done:
                    peer, peer_baselines, peer_start, peer_span = (
                        in_flight.pop(finished)
                    )
                    try:
                        results = finished.result()
                    except TransportError as exc:
                        peer_span.set("error", str(exc))
                        peer_span.close("error")
                        errors.append(exc)
                        continue
                    except CancelledError:
                        peer_span.close("cancelled")
                        errors.append(
                            TransportError(
                                f"scan to {peer!r} cancelled", peer=peer
                            )
                        )
                        continue
                    except Exception:
                        # Data errors (ValueError/InstanceError) propagate,
                        # cancelling the other attempt below.
                        peer_span.close("error")
                        raise
                    peer_span.close()
                    if peer != primary:
                        with self._lock:
                            self._hedges_won += 1
                    return self._finish_scan(
                        peer,
                        keys,
                        peer_baselines,
                        results,
                        time.monotonic() - peer_start,
                    )
                if not in_flight:
                    raise errors[-1] if errors else TransportError(
                        f"scan to {primary!r} failed", peer=primary
                    )
        finally:
            for leftover, (_, _, _, loser_span) in in_flight.items():
                leftover.cancel()
                loser_span.close("cancelled")

    def _scan_unit(
        self,
        candidates: Tuple[str, ...],
        keys: Sequence[Tuple[str, EncodedPattern]],
        deadline_at: Optional[float],
        parent_span=NULL_SPAN,
    ) -> Optional[Dict[Tuple[str, EncodedPattern], Tuple[Row, ...]]]:
        """Scan one replica group under the full policy envelope.

        Attempts rotate across ``candidates`` (retry number *k* goes to
        replica ``k mod n``, so retries double as failover); each attempt
        may hedge to the next replica.  Returns per-key rows, or ``None``
        after exhausting the policy — in which case exactly **one**
        :class:`ScanFailure` per relation is recorded, regardless of how
        many attempts were made.

        ``parent_span`` is threaded explicitly because units run on the
        scatter pool, where the submitting thread's ambient span is not
        visible.
        """
        policy = self._policy
        count = len(candidates)
        last_error = "no live replica"
        expired = False
        succeeded = False
        attempts = 0
        span = parent_span.child(
            "scan.unit",
            replicas=count,
            primary=candidates[0],
            relations=",".join(sorted({key[0] for key in keys})),
            scans=len(keys),
        )
        try:
            for attempt in range(policy.retries + 1):
                if attempt:
                    with self._lock:
                        self._retries += 1
                    delay = policy.backoff_delay(attempt - 1)
                    remaining = self._remaining(deadline_at)
                    if remaining is not None:
                        if remaining <= 0:
                            expired = True
                            break
                        delay = min(delay, remaining)
                    time.sleep(delay)
                remaining = self._remaining(deadline_at)
                if remaining is not None and remaining <= 0:
                    expired = True
                    break
                attempts = attempt + 1
                primary = candidates[attempt % count]
                hedge_peer = (
                    candidates[(attempt + 1) % count]
                    if count > 1 and policy.hedging
                    else None
                )
                try:
                    result = self._attempt_with_hedge(
                        primary,
                        hedge_peer,
                        keys,
                        deadline_at,
                        parent_span=span,
                        kind="primary" if attempt == 0 else "retry",
                    )
                    succeeded = True
                    return result
                except _DeadlineExpired:
                    expired = True
                    break
                except TransportError as exc:
                    last_error = str(exc)
            if expired:
                with self._lock:
                    self._deadline_expiries += 1
                last_error = "scan deadline expired"
            relations = sorted({key[0] for key in keys})
            self._record_failure(candidates[0], relations, last_error)
            return None
        finally:
            if span.recording:
                span.set("attempts", attempts)
                if not succeeded:
                    span.set("error", last_error)
            span.close(
                None if succeeded else ("deadline" if expired else "error")
            )

    def prefetch(
        self,
        requests: Iterable[Sequence[object]],
        parallel: bool = True,
    ) -> int:
        """Scatter-gather every not-yet-memoized scan in ``requests``.

        Each request is ``(relation, pattern)`` or — as produced by
        :meth:`UnionPlan.scan_requests(key, shard_map=...)
        <repro.pdms.planning.UnionPlan.scan_requests>` —
        ``(relation, pattern, owners)`` where a non-``None`` ``owners``
        prunes the scan to that shard group.  Two-element requests are
        pruned against this source's own :attr:`shard_map` when it has
        one.  Requests are batched into one *scan unit* per replica
        group (see :meth:`_scan_groups`); with ``parallel`` (and a
        transport that benefits — worker processes, sockets, or injected
        latency) the units run concurrently on a thread pool, so a
        rewriting touching *k* groups pays one RPC round-trip instead of
        *k*.  Each unit runs under the full :class:`ScanPolicy` envelope
        (retries, hedging, deadline).  Returns the number of scans
        fetched.  Transport faults degrade (see the module docstring);
        data errors propagate.
        """
        self._check_open()
        wanted: List[Tuple[str, EncodedPattern]] = []
        seen: Set[Tuple[str, EncodedPattern]] = set()
        patterns: Dict[Tuple[str, EncodedPattern], Pattern] = {}
        restrictions: Dict[Tuple[str, EncodedPattern], Optional[Tuple[str, ...]]] = {}
        pruned_in_wave = 0
        fanout_in_wave = 0
        with self._lock:
            generation = self._generation
            for request in requests:
                if len(request) == 3:
                    relation, pattern, restriction = request
                else:
                    relation, pattern = request
                    restriction = None
                key = (relation, encode_pattern(pattern))
                if key in self._memo or key in seen:
                    continue
                seen.add(key)
                wanted.append(key)
                patterns[key] = pattern
                restrictions[key] = restriction
            units: Dict[
                Tuple[str, ...], List[Tuple[str, EncodedPattern]]
            ] = {}
            for key in wanted:
                unit_groups, pruned = self._scan_groups(
                    key[0], patterns[key], restrictions[key]
                )
                if pruned:
                    pruned_in_wave += 1
                else:
                    fanout_in_wave += 1
                for group in unit_groups:
                    units.setdefault(group, []).append(key)
            self._pruned_scans += pruned_in_wave
            self._fanout_scans += fanout_in_wave
            if wanted:
                if fanout_in_wave == 0:
                    self._pruned_waves += 1
                else:
                    self._fanout_waves += 1
        if not wanted:
            return 0
        deadline_at = self._deadline_at()
        unit_items = list(units.items())
        with current_span().child(
            "scatter.wave",
            scans=len(wanted),
            units=len(unit_items),
            pruned=pruned_in_wave,
            fanout=fanout_in_wave,
        ) as wave:
            results: List[
                Optional[Dict[Tuple[str, EncodedPattern], Tuple[Row, ...]]]
            ]
            if (
                parallel
                and len(unit_items) > 1
                and getattr(self._transport, "prefers_parallel", True)
            ):
                pool = self._pool()
                futures = [
                    pool.submit(self._scan_unit, group, batch, deadline_at, wave)
                    for group, batch in unit_items
                ]
                results = [future.result() for future in futures]
            else:
                results = [
                    self._scan_unit(group, batch, deadline_at, wave)
                    for group, batch in unit_items
                ]
            if wave.recording:
                wave.set(
                    "failed_units", sum(1 for per in results if per is None)
                )
        merged: Dict[Tuple[str, EncodedPattern], List[Row]] = {
            key: [] for key in wanted
        }
        for (group, batch), per_key in zip(unit_items, results):
            if per_key is None:
                continue
            for key in batch:
                merged[key].extend(per_key[key])
        with self._lock:
            # A concurrent refresh() that invalidated anything may have
            # dropped entries these scans would now resurrect with
            # pre-refresh rows — skip the commit; the next reader rescans.
            if self._generation == generation:
                for key in wanted:
                    self._memo[key] = tuple(merged[key])
        return len(wanted)

    def get_matching(self, predicate: str, pattern: Pattern) -> Tuple[Row, ...]:
        self._check_open()
        key = (predicate, encode_pattern(pattern))
        with self._lock:
            cached = self._memo.get(key)
            if cached is not None:
                return cached
            groups, pruned = self._scan_groups(predicate, pattern, None)
            if pruned:
                self._pruned_scans += 1
            else:
                self._fanout_scans += 1
            generation = self._generation
        if not groups:
            return ()
        deadline_at = self._deadline_at()
        rows: List[Row] = []
        with current_span().child(
            "scatter.wave",
            scans=1,
            units=len(groups),
            cold=True,
            relation=predicate,
        ) as wave:
            for group in groups:
                per_key = self._scan_unit(group, [key], deadline_at, wave)
                if per_key is not None:
                    rows.extend(per_key[key])
        combined = tuple(rows)
        with self._lock:
            # Same guard as prefetch: never resurrect rows across an
            # invalidating refresh boundary.
            if self._generation == generation:
                self._memo[key] = combined
        return combined

    def get_tuples(self, predicate: str) -> Tuple[Row, ...]:
        arity = self.arity(predicate)
        if arity is None:
            return ()
        return self.get_matching(predicate, (WILDCARD,) * arity)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down the scatter pool (the transport is the caller's).

        Later scans and refreshes fail fast with
        :class:`~repro.errors.TransportError` instead of silently
        degrading or re-creating the pool.
        """
        with self._lock:
            self._closed = True
            executors = (self._executor, self._attempt_executor)
            self._executor = None
            self._attempt_executor = None
        for executor in executors:
            if executor is not None:
                executor.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"RemotePeerFactSource({len(self._peer_names)} peers, "
                f"{len(self._routes)} relations, {len(self._memo)} memoized, "
                f"{len(self._failures)} failures)"
            )
