"""A federated fact source over a peer-boundary transport.

:class:`RemotePeerFactSource` is the remote twin of
:class:`~repro.pdms.execution.PeerFactSource`: it implements the
:class:`~repro.datalog.indexing.IndexedFactSource` protocol — plus the
``data_version`` / ``cardinality`` extensions the planner and the
:class:`~repro.pdms.materialization.FragmentCache` rely on — by routing
every probe through a :class:`~repro.pdms.distributed.transport.Transport`
instead of touching live instances.  Planning, fragment sharing, and
version-keyed caching therefore work unchanged across the process
boundary.

Three mechanisms keep the RPC count sane and the semantics honest:

* **Scan memoization** — every ``(relation, pattern)`` scan result is
  memoized until :meth:`refresh` observes the relation's wire-fetched
  version token move.  The join engine's inner loop repeats identical
  probes constantly; each distinct probe crosses the wire once per data
  version, and batched prefetch (:meth:`prefetch`) fetches a whole
  rewriting's scans in one scatter-gather round.
* **Version tokens over the wire** — ``describe`` ships each relation's
  data-version token from the owning peer, and the combined token keeps
  the :class:`~repro.pdms.materialization.FragmentCache` invalidation
  contract: a remote write moves the token, peer churn changes the owner
  set, and stale fragments stop being served.
* **Degradation, not failure** — a scan lost to a
  :class:`~repro.errors.TransportError` contributes no rows (a *sound
  subset* under monotone conjunctive queries), records a
  :class:`ScanFailure`, and marks the relation *degraded*:
  :meth:`data_version` answers ``None`` for degraded relations so no
  partial fragment can be admitted to a version-keyed cache, and the
  partial memo entry is discarded at the next :meth:`refresh`.  Data
  errors (arity clashes) still raise, exactly like a local probe.

The source is thread-safe; one instance may serve many concurrent query
executions (see :class:`~repro.pdms.distributed.cluster.ServiceCluster`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...datalog.indexing import WILDCARD, Pattern
from ...errors import MappingError, TransportError
from ...config import distributed_workers as _config_distributed_workers
from .transport import EncodedPattern, RelationInfo, Row, Transport, encode_pattern


@dataclass(frozen=True)
class ScanFailure:
    """One scan (or metadata fetch) lost to a transport fault."""

    peer: str
    relation: str
    error: str


def distributed_workers_from_env() -> int:
    """Scatter width from ``REPRO_DISTRIBUTED_WORKERS`` (0 = auto).

    Auto sizes the pool to the peer count (capped at 16).  Malformed
    values fail fast like every ``REPRO_*`` knob — delegates to the
    consolidated reader (:func:`repro.config.distributed_workers`).
    """
    return _config_distributed_workers()


class RemotePeerFactSource:
    """Indexed fact source federating probes over a transport.

    Parameters
    ----------
    transport:
        The peer boundary to probe through.
    peers:
        Subset of the transport's peers to serve (default: all).
    shard_map:
        Optional :class:`~repro.pdms.distributed.sharding.ShardMap`
        describing how relations are horizontally partitioned across the
        transport's peers.  When present, scans whose pattern binds the
        partition column to a constant are *pruned* to the owning shard
        group instead of fanning out to every owner; everything else is
        unchanged — per-shard version tokens already combine into the
        composite token via the sorted-token aggregation below.

    Construction performs the first :meth:`refresh` — one ``describe``
    round per peer establishing the relation routing table (with the same
    eager cross-peer arity-clash check the in-process federated source
    performs), per-relation cardinalities for the cost model, and the
    version tokens the scan memo and fragment caches key on.
    """

    def __init__(
        self,
        transport: Transport,
        peers: Optional[Iterable[str]] = None,
        shard_map: Optional[object] = None,
    ):
        self._transport = transport
        self._shard_map = shard_map
        self._peer_names: Tuple[str, ...] = (
            tuple(peers) if peers is not None else tuple(transport.peers())
        )
        self._lock = threading.RLock()
        self._routes: Dict[str, Tuple[str, ...]] = {}
        self._arities: Dict[str, int] = {}
        self._cards: Dict[str, int] = {}
        self._tokens: Dict[str, Tuple[object, ...]] = {}
        self._memo: Dict[Tuple[str, EncodedPattern], Tuple[Row, ...]] = {}
        #: Bumped by every refresh() that invalidated something; scans
        #: committed to the memo only if the generation they started under
        #: is still current, so rows fetched before an invalidating
        #: refresh can never be re-inserted after it dropped them.
        self._generation = 0
        self._degraded: Set[str] = set()
        self._unreachable: Set[str] = set()
        self._failures: List[ScanFailure] = []
        self._pruned_scans = 0
        self._fanout_scans = 0
        self._pruned_waves = 0
        self._fanout_waves = 0
        self._executor = None
        self._closed = False
        self.refresh()

    # -- metadata ----------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise TransportError("RemotePeerFactSource is closed")

    def refresh(self) -> None:
        """Re-fetch peer catalogs; drop memo entries whose version moved.

        The describe round happens outside the lock, so concurrent
        refreshes overlap on the wire; the commit — routing table, version
        tokens, memo invalidation, clearing the degraded set — is atomic.
        An unreachable peer is recorded as a :class:`ScanFailure` (its
        relations drop out of the routing table, which itself moves the
        affected version tokens) rather than raising.  A cross-peer arity
        clash raises :class:`~repro.errors.MappingError` naming both
        peers, exactly like the in-process federated source.
        """
        self._check_open()
        catalogs: Dict[str, Dict[str, RelationInfo]] = {}
        unreachable: Dict[str, str] = {}
        for peer in self._peer_names:
            try:
                catalogs[peer] = self._transport.describe(peer)
            except TransportError as exc:
                unreachable[peer] = str(exc)
        routes: Dict[str, List[str]] = {}
        arities: Dict[str, int] = {}
        cards: Dict[str, int] = {}
        tokens: Dict[str, List[object]] = {}
        first_seen: Dict[str, Tuple[str, int]] = {}
        for peer, catalog in catalogs.items():
            for relation, (arity, cardinality, token) in catalog.items():
                earlier = first_seen.get(relation)
                if earlier is None:
                    first_seen[relation] = (peer, arity)
                elif earlier[1] != arity:
                    raise MappingError(
                        f"stored relation {relation!r} has arity {earlier[1]} "
                        f"at peer {earlier[0]!r} but arity {arity} at peer "
                        f"{peer!r}"
                    )
                routes.setdefault(relation, []).append(peer)
                arities[relation] = arity
                cards[relation] = cards.get(relation, 0) + cardinality
                tokens.setdefault(relation, []).append(token)
        with self._lock:
            for peer, error in unreachable.items():
                self._failures.append(ScanFailure(peer, "*", error))
            self._unreachable = set(unreachable)
            new_tokens = {
                relation: tuple(sorted(per_peer, key=repr))
                for relation, per_peer in tokens.items()
            }
            stale = {
                relation
                for relation in set(self._tokens) | set(new_tokens)
                if self._tokens.get(relation) != new_tokens.get(relation)
            }
            stale |= self._degraded
            if stale:
                self._memo = {
                    key: rows
                    for key, rows in self._memo.items()
                    if key[0] not in stale
                }
                self._generation += 1
            self._degraded = set()
            self._routes = {rel: tuple(owners) for rel, owners in routes.items()}
            self._arities = arities
            self._cards = cards
            self._tokens = new_tokens

    @property
    def shard_map(self) -> Optional[object]:
        """The placement map scans are pruned against (``None`` = unsharded)."""
        return self._shard_map

    def scatter_stats(self) -> Dict[str, int]:
        """Pruning effectiveness counters (monotone since construction).

        ``pruned_scans`` / ``fanout_scans`` count individual wire scans by
        whether shard pruning narrowed the owner set below the full route;
        ``pruned_waves`` / ``fanout_waves`` count :meth:`prefetch` rounds
        that fetched anything, a wave being *pruned* only when every scan
        in it was.
        """
        with self._lock:
            return {
                "pruned_scans": self._pruned_scans,
                "fanout_scans": self._fanout_scans,
                "pruned_waves": self._pruned_waves,
                "fanout_waves": self._fanout_waves,
            }

    def relations(self) -> Tuple[str, ...]:
        """Stored relations currently reachable through this source."""
        with self._lock:
            return tuple(self._routes)

    def owner_count(self, relation: str) -> int:
        """How many peers serve ``relation`` (0 if unknown/unreachable)."""
        with self._lock:
            return len(self._routes.get(relation, ()))

    def owners(self, relation: str) -> Tuple[str, ...]:
        """The peers currently serving ``relation`` (write routing uses this)."""
        with self._lock:
            return self._routes.get(relation, ())

    def arity(self, relation: str) -> Optional[int]:
        """Arity of ``relation`` as described by its owners, if known."""
        with self._lock:
            return self._arities.get(relation)

    def cardinality(self, relation: str) -> int:
        """Total row count across owners, as of the last refresh."""
        with self._lock:
            return self._cards.get(relation, 0)

    def data_version(self, relation: str) -> Optional[Tuple[object, ...]]:
        """The combined wire-fetched version token of ``relation``.

        ``None`` for *degraded* relations (a scan failed since the last
        refresh) — version-keyed caches must bypass them, because a
        fragment computed from partial rows under an unchanged token
        would later be served as complete.  Unknown relations yield the
        empty tuple, like the in-process federated source.
        """
        with self._lock:
            if relation in self._degraded:
                return None
            return self._tokens.get(relation, ())

    # -- health ------------------------------------------------------------

    @property
    def failure_count(self) -> int:
        """Monotone count of transport faults observed (snapshot windows)."""
        with self._lock:
            return len(self._failures)

    def failures(self, since: int = 0) -> Tuple[ScanFailure, ...]:
        """Failures recorded after index ``since`` (see ``failure_count``)."""
        with self._lock:
            return tuple(self._failures[since:])

    @property
    def degraded_relations(self) -> Tuple[str, ...]:
        """Relations whose current memo window lost at least one scan."""
        with self._lock:
            return tuple(sorted(self._degraded))

    @property
    def unreachable_peers(self) -> Tuple[str, ...]:
        """Peers whose last describe round failed."""
        with self._lock:
            return tuple(sorted(self._unreachable))

    @property
    def complete(self) -> bool:
        """Is the current view fault-free (no degradation, all peers up)?"""
        with self._lock:
            return not self._degraded and not self._unreachable

    def drop_memo(self) -> int:
        """Forget every memoized scan (testing/benchmark hook)."""
        with self._lock:
            dropped = len(self._memo)
            self._memo.clear()
            return dropped

    # -- scanning ----------------------------------------------------------

    def _scatter_width(self) -> int:
        configured = distributed_workers_from_env()
        if configured:
            return configured
        return min(16, max(2, len(self._peer_names)))

    def _pool(self):
        with self._lock:
            self._check_open()
            if self._executor is None:
                from concurrent.futures import ThreadPoolExecutor

                self._executor = ThreadPoolExecutor(
                    max_workers=self._scatter_width(),
                    thread_name_prefix="repro-scatter",
                )
            return self._executor

    def _record_failure(self, peer: str, relations: Iterable[str], error: str) -> None:
        with self._lock:
            for relation in relations:
                self._failures.append(ScanFailure(peer, relation, error))
                self._degraded.add(relation)

    def _scan_peer(
        self, peer: str, batch: List[Tuple[str, EncodedPattern]]
    ) -> Optional[List[Tuple[Row, ...]]]:
        """One batched scan RPC; ``None`` when lost to a transport fault."""
        try:
            return self._transport.scan_batch(peer, batch)
        except TransportError as exc:
            self._record_failure(peer, {relation for relation, _ in batch}, str(exc))
            return None

    def _restricted_owners(
        self,
        relation: str,
        owners_restriction: Optional[Iterable[str]],
    ) -> Tuple[Tuple[str, ...], bool]:
        """(owners to scan, was the route set narrowed?) — lock held.

        ``owners_restriction`` is a shard-pruning hint (the peer group a
        constant bound on the partition column resolves to); owners
        outside the current routing table are dropped — a peer that left
        holds no rows, so intersecting stays a sound *complete* scan of
        what remains reachable (degradation is tracked separately).
        """
        routes = self._routes.get(relation, ())
        if owners_restriction is None:
            return routes, False
        allowed = set(owners_restriction)
        owners = tuple(owner for owner in routes if owner in allowed)
        return owners, len(owners) < len(routes)

    def prefetch(
        self,
        requests: Iterable[Sequence[object]],
        parallel: bool = True,
    ) -> int:
        """Scatter-gather every not-yet-memoized scan in ``requests``.

        Each request is ``(relation, pattern)`` or — as produced by
        :meth:`UnionPlan.scan_requests(key, shard_map=...)
        <repro.pdms.planning.UnionPlan.scan_requests>` —
        ``(relation, pattern, owners)`` where a non-``None`` ``owners``
        prunes the scan to that shard group.  Two-element requests are
        pruned against this source's own :attr:`shard_map` when it has
        one.  Requests are grouped into one batched RPC per owning peer;
        with ``parallel`` (and a transport that benefits — worker
        processes, or injected latency) the per-peer batches run
        concurrently on a thread pool, so a rewriting touching *k* peers
        pays one RPC round-trip instead of *k*.  Returns the number of
        scans fetched.  Transport faults degrade (see the module
        docstring); data errors propagate.
        """
        self._check_open()
        wanted: List[Tuple[str, EncodedPattern]] = []
        seen: Set[Tuple[str, EncodedPattern]] = set()
        restrictions: Dict[Tuple[str, EncodedPattern], Optional[Tuple[str, ...]]] = {}
        pruned_in_wave = 0
        fanout_in_wave = 0
        with self._lock:
            generation = self._generation
            for request in requests:
                if len(request) == 3:
                    relation, pattern, restriction = request
                else:
                    relation, pattern = request
                    restriction = (
                        self._shard_map.owners_for_pattern(relation, pattern)
                        if self._shard_map is not None
                        else None
                    )
                key = (relation, encode_pattern(pattern))
                if key in self._memo or key in seen:
                    continue
                seen.add(key)
                wanted.append(key)
                restrictions[key] = restriction
            groups: Dict[str, List[Tuple[str, EncodedPattern]]] = {}
            for key in wanted:
                owners, pruned = self._restricted_owners(key[0], restrictions[key])
                if pruned:
                    pruned_in_wave += 1
                else:
                    fanout_in_wave += 1
                for owner in owners:
                    groups.setdefault(owner, []).append(key)
            self._pruned_scans += pruned_in_wave
            self._fanout_scans += fanout_in_wave
            if wanted:
                if fanout_in_wave == 0:
                    self._pruned_waves += 1
                else:
                    self._fanout_waves += 1
        if not wanted:
            return 0
        results: Dict[str, Optional[List[Tuple[Row, ...]]]] = {}
        if (
            parallel
            and len(groups) > 1
            and getattr(self._transport, "prefers_parallel", True)
        ):
            pool = self._pool()
            futures = {
                peer: pool.submit(self._scan_peer, peer, batch)
                for peer, batch in groups.items()
            }
            for peer, future in futures.items():
                results[peer] = future.result()
        else:
            for peer, batch in groups.items():
                results[peer] = self._scan_peer(peer, batch)
        merged: Dict[Tuple[str, EncodedPattern], List[Row]] = {
            key: [] for key in wanted
        }
        for peer, batch in groups.items():
            rows_per_request = results.get(peer)
            if rows_per_request is None:
                continue
            for key, rows in zip(batch, rows_per_request):
                merged[key].extend(rows)
        with self._lock:
            # A concurrent refresh() that invalidated anything may have
            # dropped entries these scans would now resurrect with
            # pre-refresh rows — skip the commit; the next reader rescans.
            if self._generation == generation:
                for key in wanted:
                    self._memo[key] = tuple(merged[key])
        return len(wanted)

    def get_matching(self, predicate: str, pattern: Pattern) -> Tuple[Row, ...]:
        self._check_open()
        key = (predicate, encode_pattern(pattern))
        restriction = (
            self._shard_map.owners_for_pattern(predicate, pattern)
            if self._shard_map is not None
            else None
        )
        with self._lock:
            cached = self._memo.get(key)
            if cached is not None:
                return cached
            owners, pruned = self._restricted_owners(predicate, restriction)
            if pruned:
                self._pruned_scans += 1
            else:
                self._fanout_scans += 1
            generation = self._generation
        if not owners:
            return ()
        rows: List[Row] = []
        for owner in owners:
            result = self._scan_peer(owner, [key])
            if result is not None:
                rows.extend(result[0])
        combined = tuple(rows)
        with self._lock:
            # Same guard as prefetch: never resurrect rows across an
            # invalidating refresh boundary.
            if self._generation == generation:
                self._memo[key] = combined
        return combined

    def get_tuples(self, predicate: str) -> Tuple[Row, ...]:
        arity = self.arity(predicate)
        if arity is None:
            return ()
        return self.get_matching(predicate, (WILDCARD,) * arity)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down the scatter pool (the transport is the caller's).

        Later scans and refreshes fail fast with
        :class:`~repro.errors.TransportError` instead of silently
        degrading or re-creating the pool.
        """
        with self._lock:
            self._closed = True
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"RemotePeerFactSource({len(self._peer_names)} peers, "
                f"{len(self._routes)} relations, {len(self._memo)} memoized, "
                f"{len(self._failures)} failures)"
            )
