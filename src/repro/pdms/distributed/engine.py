"""The ``"distributed"`` execution engine: scatter-gather over peers.

Registered in the :mod:`repro.pdms.execution` engine registry alongside
``"backtracking"``, ``"plan"``, and ``"shared"``, so anything that selects
an engine by name — the service layer, ``REPRO_DEFAULT_ENGINE``, the CI
matrix — can run the peer boundary without code changes.

Evaluation rides the shared union-plan IR (:mod:`repro.pdms.planning`):
fragments are hash-consed and memoized exactly as in the ``"shared"``
engine, and the cross-call :class:`~repro.pdms.materialization.FragmentCache`
keys on the same wire-fetched data-version tokens.  The distributed twist
is **where scans run**: before a rewriting is evaluated, every stored-
relation scan under its root fragment
(:meth:`~repro.pdms.planning.UnionPlan.scan_requests`) is prefetched in
one scatter-gather round — batched per owning peer, the per-peer batches
issued concurrently as futures over the transport.  With worker-process
peers the scans execute outside the caller's GIL; evaluation then joins
the memoized tables in-process.

Data routing:

* a :class:`~repro.pdms.distributed.source.RemotePeerFactSource` is used
  as-is (after a :meth:`~repro.pdms.distributed.source.RemotePeerFactSource.refresh`
  so the call sees current versions);
* per-peer instances / an in-process
  :class:`~repro.pdms.execution.PeerFactSource` are wrapped in a
  per-call loopback-transport source, so the whole tier-1 suite exercises
  the peer boundary when ``REPRO_DEFAULT_ENGINE=distributed``;
* flat fact sources (no peer structure) fall back to the shared engine's
  evaluation path unchanged.

Failure semantics: a peer that times out or is injected as failed simply
contributes no rows — under monotone conjunctive queries the result is a
**sound subset** of the complete answer.  :func:`evaluate_distributed`
surfaces this as a :class:`DistributedAnswer` with an explicit
``complete`` flag and the per-scan failure records; fragments touching
degraded relations are barred from version-keyed caches by the source
(see :mod:`repro.pdms.distributed.source`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Set, Tuple

import threading
from collections import OrderedDict

from ...config import shards as _config_shards
from ...config import transport_backend as _config_transport_backend
from ...database.feedback import QErrorLog
from ...datalog.evaluation import as_fact_source
from ...datalog.indexing import ensure_indexed
from ...errors import EvaluationError
from ...obs.trace import current_span
from ..execution import (
    PeerFactSource,
    Row,
    evaluate_reformulation,
    federate_if_per_peer,
    register_engine,
)
from ..materialization import FragmentCache, data_version_token
from ..planning import (
    UnionPlan,
    _OnceMap,
    _evaluate_rewriting_plan,
    _worth_caching,
    ensure_plan,
    stream_plan_answers,
)
from ..reformulation import ReformulationResult
from .async_transport import AsyncSocketTransport
from .sharding import auto_shard
from .source import RemotePeerFactSource, ScanFailure
from .transport import LoopbackTransport

# ``REPRO_TRANSPORT=socket`` routes every engine-wrapped call over real
# TCP sockets.  Socket transports are expensive to stand up (an event
# loop thread plus a listening server), so they are memoized per instance
# set instead of rebuilt per call: the cache holds a strong reference to
# the instances (scans read them live, so data stays fresh and ``id``
# keys cannot be recycled while cached) and evicts LRU past a small cap.
_SOCKET_CACHE_CAP = 8
_socket_cache: "OrderedDict[tuple, AsyncSocketTransport]" = OrderedDict()
_socket_cache_lock = threading.Lock()


def _socket_transport(instances) -> AsyncSocketTransport:
    key = tuple(sorted((name, id(inst)) for name, inst in instances.items()))
    evicted = []
    with _socket_cache_lock:
        transport = _socket_cache.get(key)
        if transport is not None:
            _socket_cache.move_to_end(key)
        else:
            transport = AsyncSocketTransport(instances)
            _socket_cache[key] = transport
            while len(_socket_cache) > _SOCKET_CACHE_CAP:
                evicted.append(_socket_cache.popitem(last=False)[1])
    for old in evicted:
        old.close()
    return transport


def _loopback_source(instances) -> RemotePeerFactSource:
    """Wrap live per-peer instances in a per-call transport boundary.

    With ``REPRO_SHARDS`` >= 2 the instances are first hash-partitioned
    across that many shard instances per peer (memoized per data version,
    so repeated calls over unchanged data keep stable shard identities —
    and therefore stable version tokens for the fragment caches), and the
    resulting source carries the shard map for partition pruning.  The
    boundary itself is in-process zero-copy by default;
    ``REPRO_TRANSPORT=socket`` swaps in a cached
    :class:`AsyncSocketTransport` so the same calls cross real TCP
    sockets.
    """
    socket_backend = _config_transport_backend() == "socket"

    def _wrap(insts):
        return _socket_transport(insts) if socket_backend else LoopbackTransport(insts)

    n = _config_shards()
    if n > 1:
        shard_map, workers = auto_shard(instances, n)
        return RemotePeerFactSource(_wrap(workers), shard_map=shard_map)
    return RemotePeerFactSource(_wrap(instances))


@dataclass(frozen=True)
class DistributedAnswer:
    """A best-effort distributed answer with its completeness verdict.

    ``complete`` is ``True`` only when no transport fault touched the
    evaluation window: every peer described, every scan arrived.  When
    ``False``, ``rows`` is still a *sound subset* of the complete answer
    (missing peers only remove facts, and conjunctive queries are
    monotone); ``failures`` records what was lost.
    """

    rows: frozenset
    complete: bool
    failures: Tuple[ScanFailure, ...] = ()

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class DistributedEngine:
    """Scatter-gather engine over a peer-boundary transport."""

    uses_plans = True

    def __init__(self, name: str = "distributed"):
        self.name = name

    def stream(
        self,
        result: ReformulationResult,
        data,
        plan: Optional[UnionPlan] = None,
        cache: Optional[FragmentCache] = None,
        feedback: Optional[QErrorLog] = None,
    ) -> Iterator[Row]:
        if plan is not None and plan.result is not result:
            raise EvaluationError(
                "the supplied union plan was compiled for a different "
                "reformulation result"
            )
        return self._generate(result, data, plan, cache, feedback)

    def _generate(self, result, data, plan, cache, feedback=None) -> Iterator[Row]:
        remote: Optional[RemotePeerFactSource] = None
        owns_source = False
        if isinstance(data, RemotePeerFactSource):
            remote = data
            # One describe round per call so the evaluation sees current
            # version tokens; a real wire round, so it gets its own span.
            with current_span().child("source.refresh"):
                remote.refresh()
        elif isinstance(data, PeerFactSource):
            # Wrap the live per-peer instances in a per-call loopback
            # boundary: same answers, but every probe crosses the wire
            # contract — this is what the tier-1 matrix leg exercises.
            remote = _loopback_source(data.instances())
            owns_source = True
        source = remote if remote is not None else data
        try:
            if plan is None:
                plan = ensure_plan(result, source)
            if remote is None:
                # No peer structure to scatter over: identical to "shared".
                yield from stream_plan_answers(
                    plan, source, cache=cache, feedback=feedback
                )
                return
            indexed = ensure_indexed(as_fact_source(source))
            memo = _OnceMap()
            seen: Set[Row] = set()
            for rewriting_plan in plan.fragments():
                root_key = rewriting_plan.root_key
                # A fragment already warm in the cache (locally or in the
                # shared tier) will be served without touching the wire, so
                # its whole scatter round can be skipped — this is where a
                # cross-process cache-tier hit beats a cold compute.
                prefetch_needed = True
                if cache is not None and _worth_caching(plan.nodes[root_key]):
                    relations = plan.fragment_relations(root_key)
                    token = data_version_token(remote, relations)
                    if token is not None and cache.peek(
                        root_key, token, relations
                    ):
                        prefetch_needed = False
                if prefetch_needed:
                    # Scatter: every stored-relation scan under this root,
                    # one batched RPC per owning peer, concurrently —
                    # pruned to owning shards where the pattern allows.
                    # Gathered rows land in the source's memo, so fragment
                    # evaluation below never blocks on the wire.
                    remote.prefetch(
                        plan.scan_requests(root_key, shard_map=remote.shard_map)
                    )
                for row in _evaluate_rewriting_plan(
                    plan, rewriting_plan, indexed, memo, cache, feedback=feedback
                ):
                    if row not in seen:
                        seen.add(row)
                        yield row
        finally:
            if owns_source and remote is not None:
                remote.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DistributedEngine({self.name!r})"


def evaluate_distributed(
    result: ReformulationResult,
    data,
    limit: Optional[int] = None,
    cache: Optional[FragmentCache] = None,
) -> DistributedAnswer:
    """Evaluate ``result`` over peers, reporting completeness explicitly.

    ``data`` is a :class:`~repro.pdms.distributed.source.RemotePeerFactSource`
    (typically over a :class:`~repro.pdms.distributed.process.ProcessTransport`),
    or per-peer instances / a :class:`~repro.pdms.execution.PeerFactSource`,
    which are wrapped in a loopback boundary for the call.  The failure
    window is the call itself: faults recorded by other threads sharing
    the source during the call conservatively clear ``complete``.
    """
    source = data
    owns_source = False
    if not isinstance(source, RemotePeerFactSource):
        federated = federate_if_per_peer(data)
        if not isinstance(federated, PeerFactSource):
            raise EvaluationError(
                "evaluate_distributed needs per-peer data or a "
                "RemotePeerFactSource; flat fact sources have no peer "
                "boundary to report completeness for"
            )
        source = _loopback_source(federated.instances())
        owns_source = True
    window_start = source.failure_count
    try:
        rows = evaluate_reformulation(
            result, source, engine="distributed", limit=limit, cache=cache
        )
    finally:
        if owns_source:
            source.close()
    failures = source.failures(window_start)
    complete = not failures and source.complete
    return DistributedAnswer(frozenset(rows), complete, failures)


register_engine(DistributedEngine())
