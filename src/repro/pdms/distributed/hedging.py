"""Tail-latency policy pieces: breakers, latency tracking, scan policy.

Three small, independently testable components shared by the distributed
runtime:

* :class:`HalfOpenBreaker` — a circuit breaker with a half-open probe.
  Both :class:`~repro.pdms.distributed.process.ProcessTransport` (per
  worker) and :class:`~repro.pdms.distributed.cache_tier.CacheTierClient`
  previously tripped *permanently* on failure; they now share this
  helper, so a healed peer rejoins after a cooldown instead of being
  fenced off for the life of the process.
* :class:`PeerLatencyTracker` — per-peer EWMA of scan latency (mean and
  variance), from which the adaptive hedge delay (p95) is derived.
* :class:`ScanPolicy` — the per-scan retry/hedge/deadline envelope read
  from ``REPRO_SCAN_RETRIES`` / ``REPRO_HEDGE_MS`` /
  ``REPRO_SCAN_DEADLINE_MS`` (see :mod:`repro.config`).

See ``docs/distributed.md`` ("Tail latency") for the end-to-end
semantics: how retries re-earn ``complete=True``, when a hedge fires,
and what a deadline expiry degrades.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ... import config as _config
from ...obs.metrics import METRICS_SCHEMA_VERSION

__all__ = ["HalfOpenBreaker", "PeerLatencyTracker", "ScanPolicy"]


class HalfOpenBreaker:
    """A consecutive-failure circuit breaker with a half-open probe.

    Closed until ``max_failures`` consecutive failures, then open: calls
    are refused (``allow()`` is ``False``) until ``cooldown`` seconds
    have passed, at which point exactly one caller is granted a probe.
    A probe that succeeds closes the breaker; one that fails (or a
    direct :meth:`trip`) re-arms the cooldown.  Thread-safe.
    """

    __slots__ = ("_lock", "_max_failures", "_cooldown", "_clock",
                 "_failures", "_opened_at", "_probing", "_reason")

    def __init__(
        self,
        max_failures: int = 1,
        cooldown: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        self._lock = threading.Lock()
        self._max_failures = max_failures
        self._cooldown = (
            cooldown if cooldown is not None
            else _config.breaker_cooldown_seconds()
        )
        self._clock = clock
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self._reason: Optional[str] = None

    @property
    def tripped(self) -> bool:
        """Whether the breaker is currently open (possibly probing)."""
        with self._lock:
            return self._failures >= self._max_failures

    @property
    def reason(self) -> Optional[str]:
        """The failure message that (last) tripped the breaker."""
        with self._lock:
            return self._reason

    @property
    def failures(self) -> int:
        """Current consecutive-failure count."""
        with self._lock:
            return self._failures

    def allow(self) -> bool:
        """Whether a call may proceed now.

        Always ``True`` while closed.  While open: ``False`` until the
        cooldown elapses, then ``True`` exactly once (the half-open
        probe) — concurrent callers keep getting ``False`` until that
        probe reports back via :meth:`record_success` /
        :meth:`record_failure`.
        """
        with self._lock:
            if self._failures < self._max_failures:
                return True
            if self._probing:
                return False
            if (
                self._opened_at is not None
                and self._clock() - self._opened_at >= self._cooldown
            ):
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        """Note a successful call: closes the breaker."""
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False
            self._reason = None

    def record_failure(self, reason: str = "") -> bool:
        """Note a failed call; returns whether the breaker is now open."""
        with self._lock:
            self._failures += 1
            self._probing = False
            if reason:
                self._reason = reason
            tripped = self._failures >= self._max_failures
            if tripped:
                self._opened_at = self._clock()
            return tripped

    def trip(self, reason: str = "") -> None:
        """Open the breaker immediately, regardless of the failure count."""
        with self._lock:
            self._failures = max(self._failures + 1, self._max_failures)
            self._probing = False
            self._opened_at = self._clock()
            if reason:
                self._reason = reason

    def reset(self) -> None:
        """Force-close the breaker (manual operator action)."""
        self.record_success()


class PeerLatencyTracker:
    """Per-peer EWMA of scan latency: mean, variance, derived p95.

    ``observe`` folds one measured RPC latency into the peer's running
    estimate; ``p95`` returns mean + 1.645 sigma once ``min_samples``
    observations exist (``None`` before that — the caller falls back to
    not hedging).  Thread-safe; O(1) memory per peer.
    """

    __slots__ = ("_lock", "_alpha", "_stats")

    def __init__(self, alpha: float = 0.2):
        self._lock = threading.Lock()
        self._alpha = alpha
        # peer -> [count, ewma_mean, ewma_var]
        self._stats: Dict[str, list] = {}

    def observe(self, peer: str, seconds: float) -> None:
        """Fold one measured latency (seconds) into ``peer``'s estimate."""
        with self._lock:
            entry = self._stats.get(peer)
            if entry is None:
                self._stats[peer] = [1, seconds, 0.0]
                return
            entry[0] += 1
            delta = seconds - entry[1]
            entry[1] += self._alpha * delta
            entry[2] = (1 - self._alpha) * (entry[2] + self._alpha * delta * delta)

    def count(self, peer: str) -> int:
        with self._lock:
            entry = self._stats.get(peer)
            return entry[0] if entry else 0

    def mean(self, peer: str) -> Optional[float]:
        with self._lock:
            entry = self._stats.get(peer)
            return entry[1] if entry else None

    def p95(self, peer: str, min_samples: int = 1) -> Optional[float]:
        """Estimated p95 latency for ``peer`` (mean + 1.645 sigma)."""
        with self._lock:
            entry = self._stats.get(peer)
            if entry is None or entry[0] < min_samples:
                return None
            return entry[1] + 1.645 * math.sqrt(max(entry[2], 0.0))

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-peer ``{count, mean_ms, p95_ms}`` for stats surfaces."""
        with self._lock:
            out: Dict[str, Dict[str, float]] = {}
            for peer, (count, mean, var) in self._stats.items():
                out[peer] = {
                    "count": float(count),
                    "mean_ms": mean * 1000.0,
                    "p95_ms": (mean + 1.645 * math.sqrt(max(var, 0.0))) * 1000.0,
                }
            return out


@dataclass(frozen=True)
class ScanPolicy:
    """The retry/hedge/deadline envelope applied to every scan unit.

    ``retries`` extra attempts are made on ``TransportError``, with
    exponential backoff (``backoff * 2**attempt``, capped at
    ``backoff_cap``, plus up to ``jitter`` relative random slack).
    ``hedge`` is the fixed hedge delay in seconds; ``None`` means
    adaptive (the primary's tracked p95), and ``hedging=False`` disables
    hedging outright.  ``deadline`` bounds one prefetch wave (or one
    cold ``get_matching``); ``None`` means unbounded.
    """

    retries: int = 2
    backoff: float = 0.01
    backoff_cap: float = 0.25
    jitter: float = 0.25
    hedge: Optional[float] = None
    hedging: bool = True
    deadline: Optional[float] = None
    min_hedge_samples: int = 5

    @classmethod
    def from_env(cls) -> "ScanPolicy":
        """The policy selected by the ``REPRO_*`` tail-latency knobs."""
        hedge_raw = _config.hedge_seconds()
        deadline = _config.scan_deadline_seconds()
        return cls(
            retries=_config.scan_retries(),
            hedge=hedge_raw if hedge_raw > 0 else None,
            hedging=hedge_raw >= 0,
            deadline=deadline if deadline > 0 else None,
        )

    def as_dict(self) -> Dict[str, object]:
        """The policy as a JSON-friendly snapshot (stats surfaces embed it)."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "retries": self.retries,
            "backoff_s": self.backoff,
            "backoff_cap_s": self.backoff_cap,
            "jitter": self.jitter,
            "hedge_s": self.hedge,
            "hedging": self.hedging,
            "deadline_s": self.deadline,
            "min_hedge_samples": self.min_hedge_samples,
        }

    def backoff_delay(self, attempt: int, rng=random) -> float:
        """Sleep before retry number ``attempt`` (0-based), jittered."""
        base = min(self.backoff_cap, self.backoff * (2 ** attempt))
        return base * (1.0 + self.jitter * rng.random())

    def hedge_delay(
        self, tracker: PeerLatencyTracker, peer: str
    ) -> Optional[float]:
        """How long to wait on ``peer`` before hedging; ``None`` = don't."""
        if not self.hedging:
            return None
        if self.hedge is not None:
            return self.hedge
        return tracker.p95(peer, self.min_hedge_samples)
