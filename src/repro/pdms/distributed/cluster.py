"""A concurrency-safe, admission-bounded front end over one QueryService.

:class:`~repro.pdms.service.QueryService` is (since this subsystem) safe
under concurrent callers — its reformulation/plan caches and counters are
lock-guarded — but a service alone neither bounds how much work enters at
once nor reports per-answer completeness.  :class:`ServiceCluster` adds
both:

* **Bounded admission** — at most ``max_inflight`` answers execute
  concurrently (``REPRO_MAX_INFLIGHT``, 0 = unbounded); excess callers
  queue on a semaphore instead of piling onto the peers.  ``peak_inflight``
  records the high-water mark actually reached.
* **Completeness accounting** — when the cluster fronts a transport, each
  :meth:`answer` snapshots the
  :class:`~repro.pdms.distributed.source.RemotePeerFactSource` failure
  window around the call and returns a :class:`ClusterAnswer` whose
  ``complete`` flag says whether any peer fault touched the window
  (conservative under concurrency: a fault observed by an overlapping
  call also clears the flag).
* **Fan-in** — :meth:`answer_many` evaluates a query mix on a client-side
  thread pool; with worker-process peers the scatter-gathered scans of
  different queries overlap on the wire.

The peer set is fixed by the transport at construction; catalogue churn
(mappings joining or leaving) still flows through the wrapped service,
whose provenance invalidation is unchanged.
"""

from __future__ import annotations

import copy
import threading
from typing import Dict, Iterable, List, Optional, Sequence

from ...datalog.queries import ConjunctiveQuery
from ...errors import EvaluationError, PDMSConfigurationError
from ...obs.metrics import METRICS_SCHEMA_VERSION
from ...obs.trace import current_span, get_tracer, wire_context
from ..optimizations import ReformulationConfig
from ..service import QueryService, ServiceStats
from ..system import PDMS
from ...config import max_inflight as _config_max_inflight
from .engine import DistributedAnswer
from .hedging import ScanPolicy
from .sharding import ShardMap, insert_routed
from .source import RemotePeerFactSource
from .transport import Row, Transport

#: One answered query with its completeness verdict — the same envelope
#: :func:`~repro.pdms.distributed.engine.evaluate_distributed` returns,
#: shared so enrichments (and ``isinstance`` checks) apply to both paths.
ClusterAnswer = DistributedAnswer


class ServiceCluster:
    """Serve one PDMS to concurrent callers over a peer transport.

    Parameters
    ----------
    pdms:
        The system to serve (created empty when omitted).
    transport:
        The peer boundary holding the stored-relation data; a
        :class:`~repro.pdms.distributed.source.RemotePeerFactSource` is
        built over it and installed as the service's data source, so the
        ``"distributed"`` engine scatter-gathers straight over it and the
        fragment cache keys on wire-fetched version tokens.
    service:
        Alternatively, wrap a prebuilt :class:`QueryService` (mutually
        exclusive with ``pdms``/``transport``).  Completeness reporting
        needs the service's data to be a ``RemotePeerFactSource``;
        otherwise every answer reports ``complete=True``.
    config, fragment_cache_bytes:
        Forwarded to the constructed :class:`QueryService`.
    engine:
        Execution engine for the constructed service (default
        ``"distributed"``).
    max_inflight:
        Concurrent-answer bound; default ``REPRO_MAX_INFLIGHT`` (0 =
        unbounded).
    shard_map:
        A :class:`~repro.pdms.distributed.sharding.ShardMap` describing
        how the transport's peers partition relations; enables partition
        pruning in the scatter-gather rounds and shard-aware
        :meth:`insert` routing.
    cache_tier:
        A :class:`~repro.pdms.distributed.cache_tier.CacheTierClient`
        consulted by the service's fragment cache between its local LRU
        and a fresh compute (see ``docs/sharding.md``).
    scan_policy:
        The tail-latency envelope (retries, hedging, deadlines) the
        cluster's scans run under; defaults to
        :meth:`~repro.pdms.distributed.hedging.ScanPolicy.from_env`.
        Ignored when wrapping a prebuilt ``service``.
    delta:
        ``False`` opts the cluster's source out of delta-shipping
        re-scans (every re-scan ships the full relation again).
        Ignored when wrapping a prebuilt ``service``.
    """

    def __init__(
        self,
        pdms: Optional[PDMS] = None,
        transport: Optional[Transport] = None,
        service: Optional[QueryService] = None,
        config: Optional[ReformulationConfig] = None,
        engine: str = "distributed",
        max_inflight: Optional[int] = None,
        fragment_cache_bytes: Optional[int] = None,
        shard_map: Optional[ShardMap] = None,
        cache_tier: Optional[object] = None,
        scan_policy: Optional["ScanPolicy"] = None,
        delta: bool = True,
    ):
        self._shard_map = shard_map
        if service is not None:
            if pdms is not None or transport is not None:
                raise PDMSConfigurationError(
                    "pass either a prebuilt service or pdms/transport, not both"
                )
            self._service = service
            self._transport = None
            data = service._flat_data
            self._source = data if isinstance(data, RemotePeerFactSource) else None
        else:
            if transport is None:
                raise PDMSConfigurationError(
                    "ServiceCluster needs a transport (or a prebuilt service)"
                )
            self._transport = transport
            try:
                self._source = RemotePeerFactSource(
                    transport, shard_map=shard_map, policy=scan_policy,
                    delta=delta,
                )
            except EvaluationError as exc:
                # A malformed REPRO_SCAN_RETRIES / REPRO_HEDGE_MS /
                # REPRO_SCAN_DEADLINE_MS read by ScanPolicy.from_env is a
                # construction-time mistake, exactly as max_inflight below.
                raise PDMSConfigurationError(str(exc)) from exc
            self._service = QueryService(
                pdms,
                config=config,
                engine=engine,
                data=self._source,
                fragment_cache_bytes=fragment_cache_bytes,
                cache_tier=cache_tier,
            )
        if self._source is not None:
            # The source's scatter/latency/transport snapshots become pull
            # collectors in the service's unified registry (weakly held).
            self._source.bind_metrics(self._service.metrics)
        if max_inflight is not None:
            bound = max_inflight
        else:
            try:
                bound = _config_max_inflight()
            except EvaluationError as exc:
                # Construction-time mistakes are configuration errors,
                # exactly as in QueryService.
                raise PDMSConfigurationError(str(exc)) from exc
        if bound < 0:
            raise PDMSConfigurationError("max_inflight must be >= 0 (0 = unbounded)")
        self._max_inflight = bound
        self._admission = threading.Semaphore(bound) if bound else None
        self._gauge_lock = threading.Lock()
        self._inflight = 0
        self._peak_inflight = 0
        self._served = 0

    # -- introspection -----------------------------------------------------

    @property
    def service(self) -> QueryService:
        """The wrapped (thread-safe) query service."""
        return self._service

    @property
    def source(self) -> Optional[RemotePeerFactSource]:
        """The remote source answers are served from (``None`` if wrapped)."""
        return self._source

    @property
    def transport(self) -> Optional[Transport]:
        """The transport the cluster fronts, when it built its own source."""
        return self._transport

    @property
    def shard_map(self) -> Optional[ShardMap]:
        """The placement map scans are pruned against (``None`` = unsharded)."""
        return self._shard_map

    @property
    def stats(self) -> ServiceStats:
        """The wrapped service's cache counters."""
        return self._service.stats

    @property
    def max_inflight(self) -> int:
        """The admission bound in force (0 = unbounded)."""
        return self._max_inflight

    @property
    def peak_inflight(self) -> int:
        """Highest number of concurrently executing answers seen."""
        with self._gauge_lock:
            return self._peak_inflight

    @property
    def served(self) -> int:
        """Total answers completed."""
        with self._gauge_lock:
            return self._served

    def describe(self) -> Dict[str, object]:
        """A flat status snapshot (peers, traffic, admission, caches)."""
        peers: Dict[str, int] = {}
        transport = self._transport
        if transport is not None:
            for peer in transport.peers():
                counter = getattr(transport, "scan_count", None)
                peers[peer] = counter(peer) if callable(counter) else 0
        with self._gauge_lock:
            snapshot: Dict[str, object] = {
                "schema_version": METRICS_SCHEMA_VERSION,
                "served": self._served,
                "inflight": self._inflight,
                "peak_inflight": self._peak_inflight,
                "max_inflight": self._max_inflight,
            }
        snapshot["peer_scan_counts"] = peers
        # Snapshot, not the live stats object: concurrent answers keep
        # mutating the aliased fragment/adaptive counters mid-render.
        snapshot["service"] = self._service.stats_snapshot().as_dict()
        if self._source is not None:
            snapshot["unreachable_peers"] = self._source.unreachable_peers
            snapshot["transport_failures"] = self._source.failure_count
            snapshot["scatter"] = self._source.scatter_stats()
            snapshot["peer_latency"] = self._source.latency_stats()
        if self._shard_map is not None:
            snapshot["sharding"] = self._shard_map.describe()
        snapshot["metrics"] = self._service.metrics_snapshot()
        # Every contributor above builds fresh containers today, but one
        # returning a live dict would hand callers a mutable alias into
        # running counters (and vice versa).  A deep copy of plain
        # JSON-ish data is cheap on this cold path and makes the snapshot
        # contract unconditional.
        return copy.deepcopy(snapshot)

    # -- writes ------------------------------------------------------------

    def insert(self, relation: str, rows: Iterable[Row]) -> int:
        """Route ``rows`` to their owning peers and insert them.

        With a shard map, each row goes to the shard group its partition
        column hashes (or ranges) into; otherwise every current owner of
        ``relation`` receives the batch (single-owner in practice).
        Returns the number of distinct rows routed.  Transport faults
        propagate — a write that did not land must not look like one that
        did.
        """
        if self._transport is None:
            raise PDMSConfigurationError(
                "insert needs a cluster that fronts its own transport"
            )
        fallback: Sequence[str] = ()
        if self._source is not None and (
            self._shard_map is None or not self._shard_map.is_sharded(relation)
        ):
            fallback = self._source.owners(relation)
        parent = current_span()
        span = (
            parent.child("cluster.insert", relation=relation)
            if parent.recording
            else get_tracer().start_trace("cluster.insert", relation=relation)
        )
        # The wire context installed here parents the per-peer
        # ``rpc.serve.insert`` spans under this write.
        with span, wire_context(span.wire_context()):
            count = insert_routed(
                self._transport,
                self._shard_map,
                relation,
                rows,
                fallback_peers=fallback,
            )
            if span.recording:
                span.set("rows", count)
            if self._source is not None:
                self._source.refresh()
        return count

    # -- answering ---------------------------------------------------------

    def answer(
        self, query: ConjunctiveQuery, limit: Optional[int] = None
    ) -> ClusterAnswer:
        """Answer one query under admission control.

        Blocks while ``max_inflight`` answers are already executing.  The
        completeness window spans this call; overlapping calls that hit a
        fault clear the flag conservatively.
        """
        if self._admission is not None:
            self._admission.acquire()
        try:
            with self._gauge_lock:
                self._inflight += 1
                self._peak_inflight = max(self._peak_inflight, self._inflight)
            window_start = (
                self._source.failure_count if self._source is not None else 0
            )
            rows = self._service.answer(query, limit=limit)
            if self._source is None:
                result = ClusterAnswer(frozenset(rows), True)
            else:
                failures = self._source.failures(window_start)
                complete = not failures and self._source.complete
                result = ClusterAnswer(frozenset(rows), complete, failures)
            with self._gauge_lock:
                # Counted here, not in the finally: a call that raised is
                # not a served answer.
                self._served += 1
            return result
        finally:
            with self._gauge_lock:
                self._inflight -= 1
            if self._admission is not None:
                self._admission.release()

    def answer_many(
        self,
        queries: Sequence[ConjunctiveQuery],
        limit: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> List[ClusterAnswer]:
        """Answer a query mix concurrently; results in query order.

        ``workers`` bounds the client-side pool (default: up to 8); the
        admission semaphore still gates how many answers execute at once,
        so a large mix queues instead of overwhelming the peers.
        """
        if not queries:
            return []
        pool_size = workers if workers is not None else min(8, len(queries))
        if pool_size <= 1 or len(queries) == 1:
            return [self.answer(query, limit=limit) for query in queries]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(
            max_workers=pool_size, thread_name_prefix="repro-cluster"
        ) as pool:
            return list(pool.map(lambda q: self.answer(q, limit=limit), queries))

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the source's scatter pool and the owned transport."""
        if self._source is not None:
            self._source.close()
        if self._transport is not None:
            self._transport.close()

    def __enter__(self) -> "ServiceCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceCluster({self._service!r}, served={self.served}, "
            f"max_inflight={self._max_inflight or 'unbounded'})"
        )
