"""Asyncio TCP sockets behind the blocking ``Transport`` surface.

:class:`AsyncSocketTransport` serves the same wire contract as
:class:`~repro.pdms.distributed.transport.LoopbackTransport` — describe /
scan_batch / scan_batch_since / insert — over real TCP sockets on the
loopback interface, so the framing, connection-pooling, and concurrency
story is the one peers on other hosts would use:

* one background thread runs a private asyncio event loop hosting both
  the **server** (a single ``asyncio.start_server`` endpoint serving
  every peer; requests carry the peer name) and the **client pools**
  (per-peer queues of pooled connections, opened on demand, capped at
  ``pool_size``);
* frames are 4-byte big-endian length-prefixed pickles; one request
  frame ``(op, peer, payload)`` yields one response frame
  ``(status, value)`` with the same ``ok`` / ``data_error`` / ``error``
  statuses the process backend uses, so data errors re-raise as the
  same ``ValueError`` / :class:`~repro.errors.InstanceError` a local
  probe would produce;
* callers see the ordinary *blocking* methods (each submits a coroutine
  to the loop and waits), but in-flight RPCs to different peers — and
  hedged duplicates to the same shard's replicas — genuinely overlap on
  the event loop, no thread-per-peer pool required.  :meth:`submit_scan`
  exposes the non-blocking form directly: it returns a
  :class:`concurrent.futures.Future` whose cancellation really abandons
  the RPC (the pooled connection is discarded, never re-paired);
* chaos parity with the loopback harness: ``fail_peer`` /
  ``drop_every_n`` act client-side before a frame is sent, while
  ``delay`` / ``set_peer_delay`` / ``row_cost`` are served as
  ``asyncio.sleep`` *inside* the server — so a slowed peer delays only
  its own responses while the loop keeps serving everyone else, which
  is exactly the one-slow-replica scenario hedging exists for.

Version tokens are shipped unsalted: the served instances live in this
process, so their :meth:`~repro.database.instance.Instance.instance_id`
is already unique across every transport sharing them.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import pickle
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ...database.instance import Instance
from ...errors import InstanceError, TransportError
from ...config import transport_timeout_seconds as _config_transport_timeout
from ...obs.trace import ServeSpan, current_wire_context
from .transport import (
    RelationInfo,
    Row,
    ScanRequest,
    ScanSinceResult,
    SinceScanRequest,
    TransportBase,
    decode_pattern,
    describe_instance,
    scan_instance_since,
    traced_reply,
    unwrap_envelope,
)

__all__ = ["AsyncSocketTransport"]


async def _write_frame(writer: asyncio.StreamWriter, obj: object) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    writer.write(len(data).to_bytes(4, "big"))
    writer.write(data)
    await writer.drain()


async def _read_frame(reader: asyncio.StreamReader) -> object:
    """One length-prefixed pickle frame; ``None`` on orderly EOF."""
    try:
        header = await reader.readexactly(4)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    size = int.from_bytes(header, "big")
    data = await reader.readexactly(size)
    return pickle.loads(data)


class _PooledConnection:
    __slots__ = ("reader", "writer")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer


class AsyncSocketTransport(TransportBase):
    """The four-RPC contract over asyncio TCP sockets (see module docs).

    Chaos hooks mirror :class:`LoopbackTransport`: ``delay`` (seconds per
    RPC, served remotely), ``set_peer_delay`` (extra latency for one
    peer), ``drop_every_n`` (every n-th scan RPC fails client-side), and
    ``row_cost`` (server-side seconds per returned row).
    """

    def __init__(
        self,
        instances: Mapping[str, Instance],
        delay: float = 0.0,
        drop_every_n: int = 0,
        row_cost: float = 0.0,
        pool_size: int = 4,
        timeout: Optional[float] = None,
    ):
        self._instances: Dict[str, Instance] = dict(instances)
        super().__init__(self._instances)
        self.delay = delay
        self.drop_every_n = drop_every_n
        self.row_cost = row_cost
        self._scan_rpc_count = 0
        self._pool_size = max(1, pool_size)
        self._timeout = timeout if timeout is not None else _config_transport_timeout()
        self._pools: Dict[str, asyncio.Queue] = {}
        self._handler_tasks: set = set()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-async-transport", daemon=True
        )
        self._thread.start()
        try:
            self._server, self._address = asyncio.run_coroutine_threadsafe(
                self._start_server(), self._loop
            ).result(10.0)
        except BaseException:
            self._stop_loop()
            raise

    # -- server side (runs on the event loop) ------------------------------

    async def _start_server(self):
        server = await asyncio.start_server(
            self._handle_client, "127.0.0.1", 0
        )
        return server, server.sockets[0].getsockname()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._handler_tasks.add(task)
        try:
            while True:
                frame = await _read_frame(reader)
                if frame is None:
                    break
                # Tolerant unpacking: a traced request appends the wire
                # trace context as a fourth element; servers that ignore
                # trailing elements keep serving either shape — the
                # forward-compatibility contract.
                op, peer, payload = frame[0], frame[1], frame[2]
                ctx = frame[3] if len(frame) > 3 else None
                try:
                    response = ("ok", await self._serve(op, peer, payload, ctx))
                except (ValueError, InstanceError) as exc:
                    response = ("data_error", (type(exc).__name__, str(exc)))
                except TransportError as exc:
                    response = ("error", str(exc))
                except Exception as exc:  # pragma: no cover - defensive
                    response = ("error", f"{type(exc).__name__}: {exc}")
                await _write_frame(writer, response)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client vanished (e.g. a cancelled hedge) — fine
        except asyncio.CancelledError:
            pass  # transport shutdown
        finally:
            self._handler_tasks.discard(task)
            writer.close()

    async def _serve(
        self, op: str, peer: str, payload: object, ctx: object = None
    ) -> object:
        instance = self._instances.get(peer)
        if instance is None:
            raise TransportError(f"unknown peer {peer!r}", peer=peer)
        wire_delay = self.delay + self.peer_delay(peer)
        if wire_delay > 0:
            await asyncio.sleep(wire_delay)
        if op == "describe":
            return describe_instance(instance)
        # Serve spans cover the full server-side service time, injected
        # chaos sleeps included — which is exactly what the client-side
        # attempt span needs subtracted to attribute time to the wire.
        if op == "scan":
            span = ServeSpan(ctx, "rpc.serve.scan", peer=peer, transport="socket")
            with span:
                results = [
                    tuple(instance.get_matching(relation, decode_pattern(encoded)))
                    for relation, encoded in payload
                ]
                if span.recording:
                    span.set("requests", len(payload))
                    span.set("rows", sum(len(rows) for rows in results))
                await self._charge_rows(sum(len(rows) for rows in results))
            return traced_reply(results, span)
        if op == "scan_since":
            span = ServeSpan(
                ctx, "rpc.serve.scan_since", peer=peer, transport="socket"
            )
            with span:
                results = [
                    scan_instance_since(instance, relation, encoded, since)
                    for relation, encoded, since in payload
                ]
                if span.recording:
                    span.set("requests", len(payload))
                    span.set("rows", sum(len(rows) for _, _, rows in results))
                await self._charge_rows(sum(len(rows) for _, _, rows in results))
            return traced_reply(results, span)
        if op == "insert":
            relation, rows = payload
            span = ServeSpan(
                ctx, "rpc.serve.insert", peer=peer, transport="socket",
                relation=relation,
            )
            with span:
                for row in rows:
                    instance.add(relation, row)
                if span.recording:
                    span.set("rows", len(rows))
            return traced_reply(len(rows), span)
        if op == "ping":
            return "pong"
        raise TransportError(f"unknown op {op!r}", peer=peer)

    async def _charge_rows(self, count: int) -> None:
        if self.row_cost > 0 and count:
            await asyncio.sleep(self.row_cost * count)

    # -- client side -------------------------------------------------------

    async def _acquire(self, peer: str) -> _PooledConnection:
        pool = self._pools.get(peer)
        if pool is None:
            pool = self._pools[peer] = asyncio.Queue()
        try:
            return pool.get_nowait()
        except asyncio.QueueEmpty:
            reader, writer = await asyncio.open_connection(*self._address[:2])
            return _PooledConnection(reader, writer)

    def _release(self, peer: str, conn: _PooledConnection) -> None:
        pool = self._pools.get(peer)
        if pool is not None and pool.qsize() < self._pool_size:
            pool.put_nowait(conn)
        else:
            conn.writer.close()

    async def _rpc(
        self, peer: str, op: str, payload: object, trace: object = None
    ) -> object:
        conn = await self._acquire(peer)
        clean = False
        try:
            # The frame only grows a fourth element when a trace context
            # rides along — untraced requests stay byte-identical to the
            # pre-tracing wire format.
            await _write_frame(
                conn.writer,
                (op, peer, payload) if trace is None
                else (op, peer, payload, trace),
            )
            frame = await _read_frame(conn.reader)
            clean = frame is not None
        finally:
            # A cancelled or failed RPC leaves an unpaired response in
            # flight: discard the connection rather than repooling it.
            if clean:
                self._release(peer, conn)
            else:
                conn.writer.close()
        if frame is None:
            raise TransportError(
                f"peer {peer!r} connection closed mid-RPC", peer=peer
            )
        status, value = frame
        if status == "ok":
            # A traced reply arrives enveloped with the server's serve
            # span; adopt it into the live trace and hand back the value.
            return unwrap_envelope(value)
        if status == "data_error":
            kind, message = value
            raise (InstanceError if kind == "InstanceError" else ValueError)(message)
        raise TransportError(f"peer {peer!r} RPC failed: {value}", peer=peer)

    def _precheck(self, peer: str, scan: bool = False) -> None:
        """Client-side chaos + accounting, mirroring the loopback harness."""
        if self._closed:
            raise TransportError("transport is closed", peer=peer)
        with self._lock:
            self._rpc_count += 1
            if peer in self._failed:
                raise TransportError(f"peer {peer!r} is unreachable", peer=peer)
            if peer not in self._instances:
                raise TransportError(f"unknown peer {peer!r}", peer=peer)
            if scan:
                self._scan_rpc_count += 1
                if self.drop_every_n and self._scan_rpc_count % self.drop_every_n == 0:
                    raise TransportError(
                        f"scan RPC to {peer!r} dropped (injected)", peer=peer
                    )

    def _run(self, peer: str, op: str, payload: object) -> object:
        # Capture the caller thread's wire context here: _rpc executes on
        # the event-loop thread, where the thread-local is not visible.
        future = asyncio.run_coroutine_threadsafe(
            self._rpc(peer, op, payload, trace=current_wire_context()),
            self._loop,
        )
        try:
            return future.result(self._timeout if self._timeout else None)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise TransportError(
                f"peer {peer!r}: RPC {op!r} timed out after {self._timeout}s",
                peer=peer,
            ) from None

    # -- the Transport surface ---------------------------------------------

    def peers(self) -> Tuple[str, ...]:
        return tuple(self._instances)

    def instance(self, peer: str) -> Instance:
        """The live instance behind ``peer`` (tests mutate data through it)."""
        return self._instances[peer]

    @property
    def prefers_parallel(self) -> bool:
        """Scatter hint: socket RPCs always have wire latency to overlap."""
        return True

    @property
    def address(self) -> Tuple[str, int]:
        """The ``(host, port)`` the server is listening on."""
        return self._address[:2]

    def ping(self, peer: str) -> bool:
        """Round-trip liveness probe."""
        self._precheck(peer)
        return self._run(peer, "ping", None) == "pong"

    def describe(self, peer: str) -> Dict[str, RelationInfo]:
        self._precheck(peer)
        return self._run(peer, "describe", None)

    def scan_batch(
        self, peer: str, requests: Sequence[ScanRequest]
    ) -> List[Tuple[Row, ...]]:
        self._precheck(peer, scan=True)
        results = self._run(peer, "scan", list(requests))
        self._count_scans(peer, len(requests))
        return results

    def scan_batch_since(
        self, peer: str, requests: Sequence[SinceScanRequest]
    ) -> List[ScanSinceResult]:
        self._precheck(peer, scan=True)
        results = self._run(peer, "scan_since", list(requests))
        self._count_scans(peer, len(requests))
        return results

    def submit_scan(
        self, peer: str, requests: Sequence[SinceScanRequest]
    ) -> "concurrent.futures.Future[List[ScanSinceResult]]":
        """Fire a delta-capable scan batch without blocking.

        The hedging hook: the returned future resolves to the same
        result :meth:`scan_batch_since` would return, and cancelling it
        genuinely abandons the RPC (the losing connection is discarded).
        Client-side chaos (``fail_peer``, ``drop_every_n``) is applied
        here, synchronously, before anything is sent.
        """
        self._precheck(peer, scan=True)
        batch = list(requests)
        trace = current_wire_context()

        async def go() -> List[ScanSinceResult]:
            results = await self._rpc(peer, "scan_since", batch, trace=trace)
            self._count_scans(peer, len(batch))
            return results

        return asyncio.run_coroutine_threadsafe(go(), self._loop)

    def insert(self, peer: str, relation: str, rows: Iterable[Row]) -> int:
        self._precheck(peer)
        return self._run(
            peer, "insert", (relation, [tuple(row) for row in rows])
        )

    # -- lifecycle ---------------------------------------------------------

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=2.0)
        if not self._thread.is_alive():
            self._loop.close()

    def close(self) -> None:
        """Stop the server, drain the pools, and stop the loop (idempotent)."""
        if self._closed:
            return
        super().close()

        async def shutdown() -> None:
            self._server.close()
            await self._server.wait_closed()
            for pool in self._pools.values():
                while not pool.empty():
                    pool.get_nowait().writer.close()
            # Server-side handlers for still-open client connections park
            # on their next read forever; cancel them so the loop can be
            # closed without orphaned tasks.
            pending = list(self._handler_tasks)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            # One tick for the transports' connection_lost callbacks.
            await asyncio.sleep(0)

        try:
            asyncio.run_coroutine_threadsafe(shutdown(), self._loop).result(5.0)
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        self._stop_loop()

    def __del__(self):  # pragma: no cover - gc-time safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AsyncSocketTransport({len(self._instances)} peers on "
            f"{self._address[0]}:{self._address[1]}, {self._rpc_count} rpcs)"
        )
