"""Distributed peer runtime: transports, remote peer sources, clustering.

The paper's PDMS is a *network of autonomous peers*, but PRs 1–4 kept every
peer's :class:`~repro.database.instance.Instance` in the caller's process
and every answer path synchronous.  This package makes the peer boundary
real:

* :mod:`~repro.pdms.distributed.transport` — the wire contract
  (:class:`Transport`) and the in-process :class:`LoopbackTransport`, whose
  latency/failure injection hooks double as a chaos harness;
* :mod:`~repro.pdms.distributed.process` — :class:`ProcessTransport`, which
  hosts each peer's instance in a worker *process* (``multiprocessing``)
  and serves batched pattern-level scan RPCs, sidestepping the GIL for
  remote work;
* :mod:`~repro.pdms.distributed.source` — :class:`RemotePeerFactSource`,
  implementing the :class:`~repro.datalog.indexing.IndexedFactSource`
  protocol over any transport so planning and the fragment cache work
  unchanged, with per-call scan memoization and data-version tokens
  fetched over the wire;
* :mod:`~repro.pdms.distributed.engine` — the ``"distributed"`` execution
  engine: scatter-gathers independent fragment scans across peers
  concurrently and degrades to best-effort answers with an explicit
  ``completeness`` flag when peers fail;
* :mod:`~repro.pdms.distributed.cluster` — :class:`ServiceCluster`, a
  concurrency-safe front end over :class:`~repro.pdms.service.QueryService`
  with bounded admission (``REPRO_MAX_INFLIGHT``);
* :mod:`~repro.pdms.distributed.sharding` — :class:`ShardMap` placement
  (hash/range partitioning of peer relations across worker shards) with
  stable cross-process routing hashes and partition-pruned scan owner
  resolution;
* :mod:`~repro.pdms.distributed.cache_tier` — the shared fragment-cache
  peer (:class:`FragmentStore` + :class:`CacheTierClient`) every
  :class:`~repro.pdms.materialization.FragmentCache` can consult between
  its local LRU and a fresh compute;
* :mod:`~repro.pdms.distributed.async_transport` —
  :class:`AsyncSocketTransport`, the same four-RPC contract over real
  asyncio TCP sockets (length-prefixed frames, per-peer connection
  pools, one background event-loop thread), selectable engine-wide with
  ``REPRO_TRANSPORT=socket``;
* :mod:`~repro.pdms.distributed.hedging` — the tail-latency toolkit:
  :class:`ScanPolicy` (bounded retries with jittered backoff, hedged
  duplicate scans to shard replicas, per-query deadline budgets),
  :class:`PeerLatencyTracker` (per-peer EWMA latency quantiles feeding
  the adaptive hedge trigger), and :class:`HalfOpenBreaker` (the shared
  circuit breaker that probes and recovers after a cooldown instead of
  staying open forever).

Every transport propagates the :mod:`repro.obs.trace` wire context
(trace/span ids ride scan and insert RPCs out of band, so worker-side
serve spans stitch into the caller's trace tree), and every stats
surface in the package registers into the owning service's
:class:`~repro.obs.metrics.MetricsRegistry` — see
``docs/observability.md``.

See ``docs/distributed.md`` for the wire contract, failure semantics, and
the consolidated table of every ``REPRO_*`` environment knob, and
``docs/sharding.md`` for placement, pruning, and cache-tier semantics.
"""

# Backward-compatible alias: the reader moved into the consolidated knob
# module (repro.config) with every other REPRO_* reader.
from ...config import max_inflight as max_inflight_from_env
from .transport import (
    LoopbackTransport,
    Transport,
    decode_pattern,
    encode_pattern,
)
from .async_transport import AsyncSocketTransport
from .hedging import HalfOpenBreaker, PeerLatencyTracker, ScanPolicy
from .process import ProcessTransport
from .sharding import (
    HashPartition,
    RangePartition,
    ShardMap,
    auto_shard,
    insert_routed,
    shard_peer_names,
    stable_shard_hash,
)
from .cache_tier import (
    CACHE_PEER,
    CacheTierClient,
    FragmentStore,
    default_cache_tier,
    reset_default_cache_tier,
)
from .source import RemotePeerFactSource, ScanFailure
from .engine import DistributedAnswer, DistributedEngine, evaluate_distributed
from .cluster import ClusterAnswer, ServiceCluster

__all__ = [
    "AsyncSocketTransport",
    "CACHE_PEER",
    "CacheTierClient",
    "ClusterAnswer",
    "DistributedAnswer",
    "DistributedEngine",
    "FragmentStore",
    "HalfOpenBreaker",
    "HashPartition",
    "LoopbackTransport",
    "PeerLatencyTracker",
    "ProcessTransport",
    "RangePartition",
    "RemotePeerFactSource",
    "ScanFailure",
    "ScanPolicy",
    "ServiceCluster",
    "ShardMap",
    "Transport",
    "auto_shard",
    "decode_pattern",
    "default_cache_tier",
    "encode_pattern",
    "evaluate_distributed",
    "insert_routed",
    "max_inflight_from_env",
    "reset_default_cache_tier",
    "shard_peer_names",
    "stable_shard_hash",
]
