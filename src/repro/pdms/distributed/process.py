"""One worker process per peer: the out-of-process transport backend.

:class:`ProcessTransport` implements the same wire contract as
:class:`~repro.pdms.distributed.transport.LoopbackTransport`, but each
peer's :class:`~repro.database.instance.Instance` lives in its own worker
process (``multiprocessing``), rebuilt there from the shipped rows and
serving batched pattern-level scan RPCs over a duplex pipe.  Scans
therefore run on the worker's CPU — concurrent scatter-gather across
peers sidesteps the GIL, which is the whole point of the backend.

Protocol (one request/response pair per RPC, length-prefixed by the pipe):

* request: ``(op, payload)`` where ``op`` is ``"describe"``,
  ``"scan_batch"``, ``"insert"``, ``"ping"``, ``"sleep"`` (chaos aid for
  timeout tests), or ``"stop"``; a traced request appends a third
  element (the wire trace context) which workers unpack tolerantly —
  ignoring trailing elements is the forward-compatibility contract;
* response: ``("ok", value)`` — where ``value`` is wrapped in a
  :class:`~repro.pdms.distributed.transport.TraceEnvelope` carrying the
  worker's serve span *only* when the request was traced —
  ``("data_error", (kind, message))``
  (malformed probe or invalid insert — re-raised client-side as the
  same ``ValueError`` / :class:`~repro.errors.InstanceError` a local
  instance would raise, so the two backends stay interchangeable), or
  ``("error", message)`` (unexpected worker fault —
  :class:`~repro.errors.TransportError`).

Failure semantics: an RPC that exceeds ``REPRO_TRANSPORT_TIMEOUT_MS``
(default 10 s) **circuit-breaks the peer** — later RPCs to it fail fast
with :class:`~repro.errors.TransportError` — but the break is no longer
permanent: after ``REPRO_BREAKER_COOLDOWN_MS`` a half-open probe
(:class:`~repro.pdms.distributed.hedging.HalfOpenBreaker`) is allowed
through.  The probe first *drains* any straggling response left over
from the timed-out RPC (tracked via an outstanding-send counter), so the
request/response pairing on the pipe stays aligned; a probe that cannot
drain or that fails re-arms the cooldown, a successful one closes the
breaker and the healed peer rejoins the scatter set.  A *lost
connection* (broken pipe / EOF) is still permanent — there is no pipe
left to probe.

Version tokens shipped by a worker embed the worker-side instance id,
which is only unique *within* that process.  The client therefore salts
every token with a transport-unique nonce, keeping tokens globally
unambiguous for version-keyed caches shared across transports.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ...database.instance import Instance
from ...errors import InstanceError, TransportError
from ...config import transport_timeout_seconds as _config_transport_timeout
from ...obs.trace import ServeSpan, current_wire_context
from .hedging import HalfOpenBreaker
from .transport import (
    RelationInfo,
    Row,
    ScanRequest,
    ScanSinceResult,
    SinceScanRequest,
    TransportBase,
    decode_pattern,
    describe_instance,
    scan_instance_since,
    traced_reply,
    unwrap_envelope,
)

#: Process-unique transport nonces; combined with the pid they make the
#: version tokens of two transports — even across client restarts that
#: recycle worker pids — never compare equal.
_transport_ids = itertools.count(1)


def transport_timeout_seconds() -> float:
    """RPC timeout from ``REPRO_TRANSPORT_TIMEOUT_MS`` (default 10 000 ms).

    ``0`` disables the timeout (block forever); malformed values raise,
    like every other ``REPRO_*`` knob — delegates to the consolidated
    reader (:func:`repro.config.transport_timeout_seconds`).
    """
    return _config_transport_timeout()


def _serve_peer(conn, instance: Instance) -> None:
    """Worker-process loop: host one peer's instance, answer RPCs.

    Module-level (not a closure) so the "spawn" start method can import
    it.  The instance crosses the process boundary whole — pickled via
    :meth:`Instance.__reduce__` under "spawn" (rows, arity map, and
    schema survive; indexes rebuild lazily), inherited copy-on-write
    under "fork" — so declared-but-empty relations keep their arity and
    schema validation keeps applying to remote inserts.
    """
    pid = os.getpid()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        # Tolerant unpacking is the wire-compatibility contract: an
        # untraced request is the bare (op, arg) pair it always was, a
        # traced one appends the wire trace context, and a worker that
        # ignores trailing elements keeps serving either shape.
        op, arg = message[0], message[1]
        ctx = message[2] if len(message) > 2 else None
        try:
            if op == "stop":
                conn.send(("ok", None))
                break
            if op == "ping":
                conn.send(("ok", "pong"))
            elif op == "sleep":
                # Chaos aid: hold the worker busy for `arg` seconds before
                # replying — the deterministic way to exercise the client's
                # timeout circuit breaker.
                time.sleep(float(arg))
                conn.send(("ok", None))
            elif op == "describe":
                conn.send(("ok", describe_instance(instance)))
            elif op == "scan_batch":
                span = ServeSpan(
                    ctx, "rpc.serve.scan", transport="process", pid=pid
                )
                with span:
                    results = []
                    for relation, encoded in arg:
                        pattern = decode_pattern(encoded)
                        results.append(
                            tuple(instance.get_matching(relation, pattern))
                        )
                    if span.recording:
                        span.set("requests", len(arg))
                        span.set("rows", sum(len(r) for r in results))
                conn.send(("ok", traced_reply(results, span)))
            elif op == "scan_since":
                span = ServeSpan(
                    ctx, "rpc.serve.scan_since", transport="process", pid=pid
                )
                with span:
                    results = [
                        scan_instance_since(instance, relation, encoded, since)
                        for relation, encoded, since in arg
                    ]
                    if span.recording:
                        span.set("requests", len(arg))
                        span.set("rows", sum(len(rows) for _, _, rows in results))
                conn.send(("ok", traced_reply(results, span)))
            elif op == "insert":
                relation, rows = arg
                span = ServeSpan(
                    ctx, "rpc.serve.insert", transport="process", pid=pid,
                    relation=relation,
                )
                with span:
                    for row in rows:
                        instance.add(relation, row)
                    if span.recording:
                        span.set("rows", len(rows))
                conn.send(("ok", traced_reply(len(rows), span)))
            else:
                conn.send(("error", f"unknown op {op!r}"))
        except (ValueError, InstanceError) as exc:
            # Malformed probe (arity clash) or invalid insert: *data*
            # errors the client re-raises as the same type a local
            # instance would have raised.
            conn.send(("data_error", (type(exc).__name__, str(exc))))
        except Exception as exc:  # pragma: no cover - defensive
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
    conn.close()


class _Worker:
    __slots__ = ("process", "conn", "lock", "lost", "breaker", "outstanding")

    def __init__(self, process, conn, breaker_cooldown: Optional[float]):
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        #: Permanent failure (broken pipe / EOF) — no pipe left to probe.
        self.lost: Optional[str] = None
        #: Timeout circuit: trips on the first timeout, half-open probes
        #: after the cooldown let a healed worker rejoin.
        self.breaker = HalfOpenBreaker(max_failures=1, cooldown=breaker_cooldown)
        #: Requests sent minus responses received — >0 after a timeout
        #: means a straggling response may still arrive and must be
        #: drained before the next request keeps the pairing aligned.
        self.outstanding = 0

    @property
    def broken(self) -> Optional[str]:
        """Why the peer is currently unusable (``None`` when healthy)."""
        if self.lost:
            return self.lost
        if self.breaker.tripped:
            return self.breaker.reason or "circuit open"
        return None


class ProcessTransport(TransportBase):
    """Hosts each peer's instance in a dedicated worker process.

    Parameters
    ----------
    instances:
        Per-peer data to ship; each instance's rows are rebuilt (and
        re-indexed) inside that peer's worker.  The local objects are not
        referenced afterwards — the worker's copy is the authoritative
        one, mutated only through :meth:`insert`.
    timeout:
        Per-RPC timeout in seconds; defaults to
        ``REPRO_TRANSPORT_TIMEOUT_MS`` (10 s).  ``0`` blocks forever.
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available (fast, no re-import) and the platform default elsewhere.
    breaker_cooldown:
        Seconds before a timeout-tripped peer is offered a half-open
        probe; defaults to ``REPRO_BREAKER_COOLDOWN_MS`` (1 s).
    """

    def __init__(
        self,
        instances: Mapping[str, Instance],
        timeout: Optional[float] = None,
        start_method: Optional[str] = None,
        breaker_cooldown: Optional[float] = None,
    ):
        super().__init__(instances)
        self._timeout = timeout if timeout is not None else transport_timeout_seconds()
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)
        self._nonce = (os.getpid(), next(_transport_ids))
        self._workers: Dict[str, _Worker] = {}
        try:
            for name, instance in instances.items():
                parent_conn, child_conn = context.Pipe(duplex=True)
                process = context.Process(
                    target=_serve_peer,
                    args=(child_conn, instance),
                    name=f"repro-peer-{name}",
                    daemon=True,
                )
                process.start()
                child_conn.close()
                self._workers[name] = _Worker(
                    process, parent_conn, breaker_cooldown
                )
        except BaseException:
            # A later worker failing to start (e.g. an unpicklable
            # instance under "spawn") must not orphan the ones already
            # running — stop them before propagating.
            self.close()
            raise

    # -- chaos / introspection --------------------------------------------

    def _broken_peers(self):
        """Peers whose circuit a timeout or lost pipe has broken."""
        return (name for name, worker in self._workers.items() if worker.broken)

    @property
    def nonce(self) -> Tuple[int, int]:
        """The transport-unique salt folded into shipped version tokens."""
        return self._nonce

    @property
    def prefers_parallel(self) -> bool:
        """Scatter hint: worker processes do real work off the caller's GIL."""
        return True

    # -- the wire ----------------------------------------------------------

    @staticmethod
    def _drain(worker: _Worker, grace: float = 0.05) -> bool:
        """Consume straggling responses left by timed-out RPCs.

        Called with ``worker.lock`` held, before a half-open probe sends
        its request: every outstanding response must be received (and
        discarded) first, or the probe would read the *old* RPC's answer.
        Returns ``False`` when a straggler has still not arrived within
        ``grace`` — the worker is presumably still busy.
        """
        while worker.outstanding > 0:
            if not worker.conn.poll(grace):
                return False
            worker.conn.recv()
            worker.outstanding -= 1
        return True

    def _call(self, peer: str, op: str, arg: object, trace=None):
        if self._closed:
            raise TransportError("transport is closed", peer=peer)
        worker = self._workers.get(peer)
        with self._lock:
            self._rpc_count += 1
            if peer in self._failed:
                raise TransportError(f"peer {peer!r} is unreachable", peer=peer)
        if worker is None:
            raise TransportError(f"unknown peer {peer!r}", peer=peer)
        with worker.lock:
            if worker.lost:
                raise TransportError(
                    f"peer {peer!r} connection lost: {worker.lost}", peer=peer
                )
            if not worker.breaker.allow():
                raise TransportError(
                    f"peer {peer!r} circuit is broken: "
                    f"{worker.breaker.reason}", peer=peer
                )
            try:
                if worker.outstanding and not self._drain(worker):
                    # Half-open probe refused: the straggling response
                    # from the timed-out RPC has still not arrived, so
                    # the pipe cannot be re-paired yet.  Re-arm.
                    worker.breaker.record_failure(
                        "straggling response still pending"
                    )
                    raise TransportError(
                        f"peer {peer!r} circuit is broken: straggling "
                        f"response still pending", peer=peer
                    )
                # The wire message only grows a third element when a
                # trace context rides along — untraced requests stay
                # byte-identical to the pre-tracing wire format.
                worker.conn.send(
                    (op, arg) if trace is None else (op, arg, trace)
                )
                worker.outstanding += 1
                if self._timeout and not worker.conn.poll(self._timeout):
                    # Keep the pipe: the response may yet straggle in and
                    # a half-open probe can drain it after the cooldown.
                    reason = f"RPC {op!r} timed out after {self._timeout}s"
                    worker.breaker.record_failure(reason)
                    raise TransportError(f"peer {peer!r}: {reason}", peer=peer)
                status, value = worker.conn.recv()
                worker.outstanding -= 1
                worker.breaker.record_success()
            except TransportError:
                raise
            except (BrokenPipeError, EOFError, OSError) as exc:
                worker.lost = f"{exc}"
                raise TransportError(
                    f"peer {peer!r} connection lost: {exc}", peer=peer
                ) from exc
        if status == "ok":
            # A traced reply arrives enveloped with the worker's serve
            # span; adopt it into the live trace and hand back the value.
            return unwrap_envelope(value)
        if status == "data_error":
            kind, message = value
            raise (InstanceError if kind == "InstanceError" else ValueError)(message)
        raise TransportError(f"peer {peer!r} RPC failed: {value}", peer=peer)

    def peers(self) -> Tuple[str, ...]:
        return tuple(self._workers)

    def ping(self, peer: str) -> bool:
        """Round-trip liveness probe."""
        return self._call(peer, "ping", None) == "pong"

    def sleep(self, peer: str, seconds: float) -> None:
        """Hold ``peer`` busy for ``seconds`` (chaos aid for timeout tests)."""
        self._call(peer, "sleep", seconds)

    def describe(self, peer: str) -> Dict[str, RelationInfo]:
        info = self._call(peer, "describe", None)
        # Salt worker-side tokens: instance ids are only unique within the
        # worker process, the nonce makes them unique across transports.
        return {
            relation: (arity, cardinality, (self._nonce, token))
            for relation, (arity, cardinality, token) in info.items()
        }

    def scan_batch(
        self, peer: str, requests: Sequence[ScanRequest]
    ) -> List[Tuple[Row, ...]]:
        results = self._call(
            peer, "scan_batch", list(requests), trace=current_wire_context()
        )
        self._count_scans(peer, len(requests))
        return results

    def scan_batch_since(
        self, peer: str, requests: Sequence[SinceScanRequest]
    ) -> List[ScanSinceResult]:
        # Unsalt outgoing cursors (the worker only understands its own
        # raw tokens; a foreign-nonce cursor degrades to a full scan) and
        # re-salt the returned tokens, mirroring describe().
        wire = []
        for relation, encoded, since in requests:
            raw = None
            if (
                isinstance(since, tuple)
                and len(since) == 2
                and since[0] == self._nonce
            ):
                raw = since[1]
            wire.append((relation, encoded, raw))
        results = self._call(
            peer, "scan_since", wire, trace=current_wire_context()
        )
        self._count_scans(peer, len(requests))
        return [
            (full, (self._nonce, token) if token is not None else None, rows)
            for full, token, rows in results
        ]

    def insert(self, peer: str, relation: str, rows: Iterable[Row]) -> int:
        return self._call(
            peer, "insert", (relation, [tuple(row) for row in rows]),
            trace=current_wire_context(),
        )

    def close(self) -> None:
        """Stop every worker and release the pipes (idempotent)."""
        if self._closed:
            return
        super().close()
        for worker in self._workers.values():
            with worker.lock:
                if not worker.broken:
                    try:
                        worker.conn.send(("stop", None))
                        worker.conn.poll(1.0)
                    except (BrokenPipeError, OSError):
                        pass
                try:
                    worker.conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        for worker in self._workers.values():
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=1.0)

    def __del__(self):  # pragma: no cover - gc-time safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessTransport({len(self._workers)} peers, "
            f"{self._rpc_count} rpcs)"
        )
