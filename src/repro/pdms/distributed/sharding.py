"""Shard-aware placement: partitioning peer relations across workers.

Until this module, a stored relation lived wholly on the one transport
peer that described it, so a popular relation's scans all landed on one
worker and adding workers added nothing.  This module makes placement a
first-class, planner-visible object:

* a :class:`ShardMap` records, per stored relation, a *partition scheme*
  (:class:`HashPartition` or :class:`RangePartition` over one column) and
  a *placement*: for each shard index, the group of transport peers
  holding that shard (a group has more than one member only under
  replication).  Shards are ordinary transport peers — the
  :class:`~repro.pdms.distributed.source.RemotePeerFactSource` routing
  table lists every shard as an owner of the relation, its ``describe``
  aggregation sums per-shard cardinalities, and the sorted tuple of
  per-shard version tokens *is* the relation's composite version token,
  so the :class:`~repro.pdms.materialization.FragmentCache` invalidation
  contract survives sharding with no new machinery;
* :meth:`ShardMap.owners_for_pattern` is the **pruning rule**: a scan
  whose pattern binds the partition column to a constant touches only the
  owning shard group; any other scan fans out to the full placement.
  Pruning is consulted by :meth:`UnionPlan.scan_requests
  <repro.pdms.planning.UnionPlan.scan_requests>` and by the remote
  source's scatter path, and it is *sound by construction*: rows that
  hash (or range) elsewhere cannot exist on other shards, so the pruned
  union equals the fan-out union;
* :meth:`ShardMap.route_rows` is the write path: inserts route to the
  owning shard group (every group member under replication), keeping the
  placement invariant the pruning rule relies on;
* :func:`auto_shard` hash-partitions every relation of a per-peer
  instance map across ``n`` fresh worker instances — the helper behind
  the ``REPRO_SHARDS`` knob (see :func:`repro.config.shards`) that lets
  the whole tier-1 suite run sharded without any scenario changes.

Hash placement must agree across *processes* (a client routes an insert
that a worker-process shard later serves), and Python's builtin ``hash``
is seed-randomized for strings, so :func:`stable_shard_hash` hashes a
canonical byte encoding instead.  Numeric values that compare equal
(``1 == 1.0 == True``) canonicalize identically — otherwise a row
inserted as ``1`` could be probed as ``1.0`` on the wrong shard.

See ``docs/sharding.md`` for the full placement/pruning/failure story.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ...database.instance import Instance
from ...datalog.indexing import WILDCARD, Pattern
from ...errors import PDMSConfigurationError
from ...obs.metrics import METRICS_SCHEMA_VERSION
from ...obs.trace import current_span

Row = Tuple[object, ...]


# ---------------------------------------------------------------------------
# Stable hashing (placement must agree across processes)
# ---------------------------------------------------------------------------

def _canonical_bytes(value: object) -> bytes:
    """A byte encoding under which equal values encode equally.

    Covers the wire-friendly value types (``None``, bools, ints, floats,
    strings, bytes, nested tuples/frozensets); anything else falls back to
    ``repr``, which is stable within a process but should not be relied on
    for cross-process placement of exotic types.
    """
    if value is None:
        return b"n"
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        return b"i" + str(value).encode("ascii")
    if isinstance(value, float):
        # Integral floats collapse onto the equal int (1.0 == 1 must land
        # on 1's shard); everything else uses the exact hex form.
        if value.is_integer() and abs(value) < 2**63:
            return b"i" + str(int(value)).encode("ascii")
        return b"f" + value.hex().encode("ascii")
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"b" + value
    if isinstance(value, tuple):
        return b"t" + b"\x1f".join(_canonical_bytes(item) for item in value)
    if isinstance(value, frozenset):
        return b"F" + b"\x1f".join(
            sorted(_canonical_bytes(item) for item in value)
        )
    return b"r" + repr(value).encode("utf-8", "backslashreplace")


def stable_shard_hash(value: object) -> int:
    """A process-independent 64-bit hash of one partition-column value."""
    digest = hashlib.blake2b(_canonical_bytes(value), digest_size=8).digest()
    return int.from_bytes(digest, "big")


# ---------------------------------------------------------------------------
# Partition schemes
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HashPartition:
    """Hash partitioning of one column into ``shards`` buckets."""

    column: int
    shards: int

    def __post_init__(self):
        if self.shards < 1:
            raise PDMSConfigurationError("HashPartition needs at least 1 shard")
        if self.column < 0:
            raise PDMSConfigurationError("partition column must be >= 0")

    def shard_of(self, value: object) -> int:
        """The shard index owning rows whose partition column is ``value``."""
        return stable_shard_hash(value) % self.shards


@dataclass(frozen=True)
class RangePartition:
    """Range partitioning by sorted split points.

    ``bounds = (b0, b1, ..., bk)`` defines ``k + 1`` shards: shard 0 holds
    values ``< b0``, shard ``i`` holds ``b(i-1) <= value < b(i)``, and the
    last shard holds ``>= bk``.  Values that do not compare with the
    bounds (mixed types) raise ``TypeError`` from :meth:`shard_of`; the
    pruning rule treats that as "cannot prune" while the write path
    treats it as a data error.
    """

    column: int
    bounds: Tuple[object, ...]

    def __post_init__(self):
        if not self.bounds:
            raise PDMSConfigurationError("RangePartition needs split points")
        if self.column < 0:
            raise PDMSConfigurationError("partition column must be >= 0")
        try:
            ordered = list(self.bounds) == sorted(self.bounds)
        except TypeError:
            raise PDMSConfigurationError(
                "RangePartition bounds must be mutually comparable"
            ) from None
        if not ordered:
            raise PDMSConfigurationError("RangePartition bounds must be sorted")

    @property
    def shards(self) -> int:
        return len(self.bounds) + 1

    def shard_of(self, value: object) -> int:
        """The shard index owning ``value`` (``TypeError`` if incomparable)."""
        return bisect_right(list(self.bounds), value)


@dataclass(frozen=True)
class _ShardSpec:
    """One relation's partition scheme plus its shard-indexed placement."""

    partition: object  # HashPartition | RangePartition
    #: ``placement[i]`` is the group of transport peers holding shard i
    #: (more than one member only under replication).
    placement: Tuple[Tuple[str, ...], ...]


# ---------------------------------------------------------------------------
# The shard map
# ---------------------------------------------------------------------------

class ShardMap:
    """Relation → (partition scheme, shard placement), the catalogue's twin.

    Lives alongside the PDMS catalogue and is handed to the transport
    layer (:class:`~repro.pdms.distributed.source.RemotePeerFactSource`,
    :class:`~repro.pdms.distributed.cluster.ServiceCluster`).  Relations
    absent from the map are simply unsharded: routing falls back to the
    describe-derived owner set, exactly as before this module existed.

    The map is immutable-after-registration in spirit: register every
    relation before serving queries; the object itself is safe to share
    across threads because registration only adds dict entries.
    """

    def __init__(self):
        self._specs: Dict[str, _ShardSpec] = {}

    # -- registration ------------------------------------------------------

    def _register(self, relation: str, partition, placement) -> "ShardMap":
        groups = tuple(
            (entry,) if isinstance(entry, str) else tuple(entry)
            for entry in placement
        )
        if len(groups) != partition.shards:
            raise PDMSConfigurationError(
                f"relation {relation!r}: placement lists {len(groups)} shard "
                f"groups but the partition scheme has {partition.shards}"
            )
        if any(not group for group in groups):
            raise PDMSConfigurationError(
                f"relation {relation!r}: every shard needs at least one peer"
            )
        if relation in self._specs:
            raise PDMSConfigurationError(
                f"relation {relation!r} is already sharded"
            )
        self._specs[relation] = _ShardSpec(partition, groups)
        return self

    def shard_by_hash(
        self,
        relation: str,
        column: int,
        placement: Sequence[object],
    ) -> "ShardMap":
        """Hash-partition ``relation`` on ``column`` across ``placement``.

        ``placement[i]`` is the peer (or peer group, under replication)
        holding shard ``i``; the shard count is ``len(placement)``.
        Returns ``self`` for chaining.
        """
        return self._register(
            relation, HashPartition(column, len(placement)), placement
        )

    def shard_by_range(
        self,
        relation: str,
        column: int,
        bounds: Sequence[object],
        placement: Sequence[object],
    ) -> "ShardMap":
        """Range-partition ``relation`` on ``column`` at ``bounds``.

        ``placement`` needs ``len(bounds) + 1`` entries (one per range).
        Returns ``self`` for chaining.
        """
        return self._register(
            relation, RangePartition(column, tuple(bounds)), placement
        )

    # -- introspection -----------------------------------------------------

    def is_sharded(self, relation: str) -> bool:
        return relation in self._specs

    def relations(self) -> Tuple[str, ...]:
        """Every sharded relation."""
        return tuple(self._specs)

    def partition(self, relation: str):
        """The partition scheme of ``relation`` (``None`` if unsharded)."""
        spec = self._specs.get(relation)
        return spec.partition if spec is not None else None

    def placement(self, relation: str) -> Tuple[Tuple[str, ...], ...]:
        """Shard-indexed peer groups of ``relation`` (empty if unsharded)."""
        spec = self._specs.get(relation)
        return spec.placement if spec is not None else ()

    def all_peers(self, relation: str) -> Tuple[str, ...]:
        """Every peer holding any shard of ``relation`` (dedup, in order)."""
        seen: Dict[str, None] = {}
        for group in self.placement(relation):
            for peer in group:
                seen.setdefault(peer)
        return tuple(seen)

    def describe(self) -> Dict[str, Dict[str, object]]:
        """A JSON-friendly snapshot (cluster ``describe()`` embeds this)."""
        out: Dict[str, Dict[str, object]] = {}
        for relation, spec in self._specs.items():
            out[relation] = {
                "scheme": type(spec.partition).__name__,
                "column": spec.partition.column,
                "shards": spec.partition.shards,
                "peers": list(self.all_peers(relation)),
            }
        return out

    def as_dict(self) -> Dict[str, object]:
        """The schema-versioned twin of :meth:`describe`.

        ``describe()`` keeps its relation-keyed shape (cluster snapshots
        embed it under ``"sharding"``); metrics surfaces register this
        wrapper instead so every collected snapshot carries the version.
        """
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "relations": self.describe(),
        }

    # -- the pruning rule --------------------------------------------------

    def owners_for_pattern(
        self, relation: str, pattern: Pattern
    ) -> Optional[Tuple[str, ...]]:
        """The peers a scan with ``pattern`` must touch.

        ``None`` means "no placement knowledge" (unsharded relation): the
        caller falls back to the describe-derived owner set.  A pattern
        binding the partition column to a constant prunes to the owning
        shard group; anything else — wildcard partition column, a pattern
        too short to cover it, or a range-incomparable constant — returns
        the full placement (sound fan-out).
        """
        spec = self._specs.get(relation)
        if spec is None:
            return None
        column = spec.partition.column
        value = pattern[column] if column < len(pattern) else WILDCARD
        if value is WILDCARD:
            return self.all_peers(relation)
        try:
            index = spec.partition.shard_of(value)
        except TypeError:
            # Range bounds cannot order this value; fan out soundly.
            return self.all_peers(relation)
        return spec.placement[index]

    def groups_for_pattern(
        self, relation: str, pattern: Pattern
    ) -> Optional[Tuple[Tuple[str, ...], ...]]:
        """The replica groups a scan with ``pattern`` must cover.

        The group-structured twin of :meth:`owners_for_pattern`: instead
        of a flat peer set it returns one group per shard the scan must
        touch, each group listing the replicas holding that shard — any
        *one* live member of each group suffices for a complete answer,
        which is what makes hedging and replica failover sound.  ``None``
        means "no placement knowledge" (unsharded relation).
        """
        spec = self._specs.get(relation)
        if spec is None:
            return None
        column = spec.partition.column
        value = pattern[column] if column < len(pattern) else WILDCARD
        if value is not WILDCARD:
            try:
                return (spec.placement[spec.partition.shard_of(value)],)
            except TypeError:
                pass  # Range bounds cannot order this value; fan out.
        return spec.placement

    # -- the write path ----------------------------------------------------

    def owners_for_row(self, relation: str, row: Row) -> Tuple[str, ...]:
        """The shard group an inserted ``row`` belongs on."""
        spec = self._specs.get(relation)
        if spec is None:
            raise PDMSConfigurationError(f"relation {relation!r} is not sharded")
        column = spec.partition.column
        if column >= len(row):
            raise ValueError(
                f"relation {relation!r} rows have width {len(row)}, but the "
                f"partition column is {column}"
            )
        try:
            index = spec.partition.shard_of(row[column])
        except TypeError as exc:
            raise ValueError(
                f"relation {relation!r}: partition value {row[column]!r} "
                f"does not compare with the range bounds"
            ) from exc
        return spec.placement[index]

    def route_rows(
        self, relation: str, rows: Iterable[Row]
    ) -> Dict[str, List[Row]]:
        """Group ``rows`` by destination peer (replicas get every copy)."""
        routed: Dict[str, List[Row]] = {}
        for row in rows:
            row = tuple(row)
            for peer in self.owners_for_row(relation, row):
                routed.setdefault(peer, []).append(row)
        return routed

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardMap({len(self._specs)} sharded relations)"


# ---------------------------------------------------------------------------
# Automatic sharding of per-peer instances (the REPRO_SHARDS path)
# ---------------------------------------------------------------------------

def shard_peer_names(peer: str, shards: int) -> Tuple[str, ...]:
    """The worker-peer names ``peer``'s shards live on (``peer#0`` …)."""
    return tuple(f"{peer}#{index}" for index in range(shards))


#: Per-instance memo of the last split: re-splitting on every call would
#: mint fresh shard instances (fresh ids → fresh version tokens) and
#: silently disable every version-keyed cache, so splits are reused until
#: the source instance's version vector moves.  Instances are unhashable
#: by design, so the memo is keyed by ``id`` with a weakref finalizer
#: evicting the entry when the instance dies (before its id can be
#: recycled).
_split_memo: Dict[int, tuple] = {}
_split_lock = threading.Lock()


def _split_memo_put(instance: Instance, entry: tuple) -> None:
    key = id(instance)

    def _evict(_ref, key=key):
        with _split_lock:
            _split_memo.pop(key, None)

    with _split_lock:
        _split_memo[key] = (weakref.ref(instance, _evict), entry)


def _split_memo_get(instance: Instance):
    with _split_lock:
        slot = _split_memo.get(id(instance))
    if slot is None or slot[0]() is not instance:
        return None
    return slot[1]


def _instance_snapshot(instance: Instance) -> Tuple:
    """A comparable fingerprint of an instance's current contents."""
    return tuple(sorted(instance.version_vector().items()))


def _split_instance(
    peer: str, instance: Instance, shards: int, column: int
) -> Dict[str, Instance]:
    """Split one peer instance into ``shards`` worker instances (memoized).

    Relations wide enough to carry the partition column are hash-routed
    row by row; narrower relations (e.g. arity ≤ ``column``) stay whole
    on shard 0 — they are served unsharded through normal describe-based
    routing.
    """
    snapshot = _instance_snapshot(instance)
    memo = _split_memo_get(instance)
    if memo is not None and memo[0] == (shards, column, snapshot):
        return memo[1]
    names = shard_peer_names(peer, shards)
    # Only the cold (non-memoized) split gets a span: it hashes every row
    # of the instance, while the memo hit above costs a dict probe.
    with current_span().child("shard.split", peer=peer, shards=shards):
        parts: Dict[str, Instance] = {name: Instance() for name in names}
        for relation in instance.relations():
            arity = instance.arity(relation)
            if arity is None:
                continue
            if arity > column:
                partition = HashPartition(column, shards)
                for row in instance.get_tuples(relation):
                    parts[names[partition.shard_of(row[column])]].add(
                        relation, row
                    )
            else:
                for row in instance.get_tuples(relation):
                    parts[names[0]].add(relation, row)
    _split_memo_put(instance, ((shards, column, snapshot), parts))
    return parts


def auto_shard(
    instances: Mapping[str, Instance], shards: int, column: int = 0
) -> Tuple[ShardMap, Dict[str, Instance]]:
    """Hash-partition every peer's relations across ``shards`` workers.

    Returns the :class:`ShardMap` plus the worker instance map (peer
    ``P``'s shards are named ``P#0`` … ``P#{shards-1}``), ready to hand to
    any transport.  Relations too narrow for the partition column are
    left unsharded (whole on shard 0, absent from the map).  Splits are
    memoized per source instance until its data moves, so repeated calls
    over unchanged data reuse the same worker instances — and therefore
    the same version tokens, keeping fragment caches warm.
    """
    if shards < 1:
        raise PDMSConfigurationError("auto_shard needs at least 1 shard")
    shard_map = ShardMap()
    workers: Dict[str, Instance] = {}
    placements: Dict[str, List[Tuple[str, ...]]] = {}
    for peer, instance in instances.items():
        parts = _split_instance(peer, instance, shards, column)
        workers.update(parts)
        names = shard_peer_names(peer, shards)
        for relation in instance.relations():
            arity = instance.arity(relation)
            if arity is None or arity <= column:
                continue
            groups = placements.setdefault(
                relation, [() for _ in range(shards)]
            )
            for index in range(shards):
                groups[index] = groups[index] + (names[index],)
    for relation, groups in placements.items():
        shard_map.shard_by_hash(relation, column, groups)
    return shard_map, workers


def insert_routed(
    transport,
    shard_map: Optional[ShardMap],
    relation: str,
    rows: Iterable[Row],
    fallback_peers: Sequence[str] = (),
) -> int:
    """Insert ``rows`` through ``transport``, routed by the shard map.

    Sharded relations route each row to its owning shard group (every
    member under replication); unsharded relations go to
    ``fallback_peers`` whole.  Returns the number of distinct rows routed
    (replica copies are not counted twice).  Transport faults propagate —
    a write that did not land must not look like one that did.
    """
    rows = [tuple(row) for row in rows]
    if not rows:
        return 0
    if shard_map is not None and shard_map.is_sharded(relation):
        routed = shard_map.route_rows(relation, rows)
    else:
        if not fallback_peers:
            raise PDMSConfigurationError(
                f"relation {relation!r} is unsharded and no fallback peer "
                f"owns it"
            )
        routed = {peer: rows for peer in fallback_peers}
    for peer, peer_rows in routed.items():
        transport.insert(peer, relation, peer_rows)
    return len(rows)
