"""The query reformulation algorithm for PPL (Section 4 of the paper).

Given a PDMS and a conjunctive query over one peer's schema, the algorithm
produces a union of conjunctive queries that refer only to *stored*
relations, by building a rule-goal tree that interleaves

* **definitional expansion** (GAV-style view unfolding): a goal node whose
  predicate is the head of a definitional description is expanded with the
  rule's body, and
* **inclusion expansion** (LAV-style answering-queries-using-views): a goal
  node whose predicate appears on the right-hand side of an inclusion or
  storage description ``V ⊆ Q`` is reformulated to use ``V``; a MiniCon
  description (MCD) determines which sibling subgoals the ``V`` atom also
  covers, recorded in the rule node's ``unc``/``covers`` label.

Termination follows the paper's rule: a peer description is never reused
on the path from the root to the node being expanded, which bounds the
tree even for cyclic PDMSs.  Step 3 assembles rewritings by choosing one
expansion per goal node and, at each rule node, a subset of children whose
coverage includes all children; it is implemented as a generator so the
first rewritings stream out before the enumeration finishes (the paper's
Figure 4 measures time-to-first/tenth/all rewritings).

Soundness/completeness: evaluating the output only yields certain answers,
and under the tractable conditions of Theorems 3.2/3.3 it yields all of
them; ``tests/integration`` cross-checks this against the chase-based
oracle in :mod:`repro.pdms.semantics`.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom, ComparisonAtom
from ..datalog.constraints import ConstraintSet
from ..datalog.containment import remove_redundant_disjuncts
from ..datalog.minimize import minimize as minimize_query
from ..datalog.queries import ConjunctiveQuery, UnionQuery
from ..datalog.terms import FreshVariableFactory, Term, Variable, is_variable
from ..datalog.unify import (
    apply_substitution_body,
    apply_substitution_term,
    unify_atoms,
)
from ..errors import ReformulationError
from ..integration.minicon import MCD, create_mcds
from .optimizations import DEFAULT_CONFIG, ExpansionOrder, ReformulationConfig
from .rule_goal_tree import GoalNode, RuleGoalTree, RuleNode, TreeStatistics
from .system import PDMS, NormalizedCatalogue, NormalizedInclusion, NormalizedRule

_QUERY_ORIGIN = "__query__"
_CONTEXT_PREDICATE = "__ctx__"


# ---------------------------------------------------------------------------
# Lazy sequences: cache generator output so shared subtrees are enumerated once
# ---------------------------------------------------------------------------

class _LazySeq:
    """A re-iterable, thread-safe view over a generator that caches items.

    Multiple consumers — including threads of a parallel plan execution or
    concurrent ``QueryService.stream`` iterators — may iterate one shared
    instance: the underlying generator is advanced under a lock, each item
    exactly once, and already-produced items are served from the cache
    without locking (the cache list is append-only, so reads of a prefix
    are always consistent).

    A mid-stream exception from the generator is remembered: every
    consumer reaching the truncation point re-raises it, so a failed
    enumeration can never masquerade as a complete-but-shorter one (which
    would silently drop answers from anything cached on top).
    """

    __slots__ = ("_iterator", "_cache", "_done", "_error", "_lock")

    def __init__(self, iterator: Iterator):
        self._iterator = iterator
        self._cache: List = []
        self._done = False
        self._error: Optional[BaseException] = None
        self._lock = threading.Lock()

    def _finished(self) -> None:
        """Handle an observed done flag: re-raise a recorded failure."""
        if self._error is not None:
            raise self._error

    def __iter__(self):
        index = 0
        while True:
            # Fast path: the prefix up to len(_cache) is immutable.
            if index < len(self._cache):
                yield self._cache[index]
                index += 1
                continue
            if self._done:
                # Appends strictly precede the done flag (both happen
                # under the lock); re-check the cache length after
                # observing it so a concurrently appended tail is never
                # dropped.
                if index < len(self._cache):
                    continue
                self._finished()
                return
            with self._lock:
                # Another consumer may have advanced (or exhausted) the
                # generator while we waited for the lock; re-check both.
                if index < len(self._cache):
                    item = self._cache[index]
                elif self._done:
                    self._finished()
                    return
                else:
                    try:
                        item = next(self._iterator)
                    except StopIteration:
                        self._done = True
                        return
                    except Exception as exc:
                        # Record the failure *before* the done flag so any
                        # consumer observing done also sees the error.
                        self._error = exc
                        self._done = True
                        raise
                    except BaseException:
                        # An interrupt (KeyboardInterrupt etc.) kills the
                        # generator too, but caching the interrupt itself
                        # would poison every later consumer with a stale
                        # Ctrl-C.  Record a fresh, diagnosable error
                        # instead; the interrupt propagates to whoever
                        # caused it.
                        self._error = ReformulationError(
                            "the rewriting enumeration was interrupted "
                            "before completing; re-run the reformulation "
                            "(or clear the cache entry) to recompute"
                        )
                        self._done = True
                        raise
                    self._cache.append(item)
            yield item
            index += 1


# ---------------------------------------------------------------------------
# Productive-predicate analysis (dead-end detection, Section 4.3)
# ---------------------------------------------------------------------------

def compute_productive_predicates(catalogue: NormalizedCatalogue) -> frozenset:
    """Predicates from which the reformulation can possibly reach stored data.

    A predicate is *productive* if it is a stored relation, if some
    definitional rule for it has an all-productive body, or if it occurs
    on the right-hand side of an inclusion description whose left-hand
    side predicate is productive.  Goal nodes over non-productive
    predicates that also cannot be covered by a sibling (they appear on no
    inclusion right-hand side) are dead ends.
    """
    productive: Set[str] = set(catalogue.stored_relations)
    changed = True
    while changed:
        changed = False
        for rule in catalogue.rules:
            if rule.head_predicate in productive:
                continue
            body_predicates = rule.rule.predicates()
            if body_predicates and all(p in productive for p in body_predicates):
                productive.add(rule.head_predicate)
                changed = True
        for inclusion in catalogue.inclusions:
            if inclusion.head_predicate not in productive:
                continue
            for predicate in inclusion.body_predicates():
                if predicate not in productive:
                    productive.add(predicate)
                    changed = True
    return frozenset(productive)


# ---------------------------------------------------------------------------
# Provenance: which descriptions and predicates a reformulation depends on
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReformulationProvenance:
    """What one reformulation *used* and what it *depends on*.

    ``used_origins`` are the origin names of every description applied in
    the rule-goal tree — removing any of them can remove rewritings.
    ``touched_predicates`` are the labels of every goal node; a new
    description defining or mentioning one of them can add expansions.
    ``dependencies`` is a superset of ``touched_predicates`` that also
    closes over the unproductive predicates whose status the dead-end
    pruner consulted: a new description can make such a predicate
    productive *transitively*, reviving a pruned expansion, so caches must
    treat those predicates as dependencies too.
    """

    used_origins: frozenset
    touched_predicates: frozenset
    dependencies: frozenset

    def affected_by(self, affected_predicates: frozenset, removed_origins: frozenset) -> bool:
        """Could a catalogue change with these footprints alter the result?"""
        return bool(
            (removed_origins & self.used_origins)
            or (affected_predicates & self.dependencies)
        )


def _unproductive_closure(
    catalogue: NormalizedCatalogue, frontier: Iterable[str], productive: frozenset
) -> Set[str]:
    """All unproductive predicates whose status can influence ``frontier``.

    Productivity propagates through definitional-rule bodies and inclusion
    left-hand sides; a catalogue addition touching any predicate in the
    returned set can flip a frontier predicate to productive.
    """
    closure: Set[str] = set()
    worklist = [p for p in frontier if p not in productive]
    while worklist:
        predicate = worklist.pop()
        if predicate in closure:
            continue
        closure.add(predicate)
        for rule in catalogue.definitional_for(predicate):
            for body_predicate in rule.rule.predicates():
                if body_predicate not in productive and body_predicate not in closure:
                    worklist.append(body_predicate)
        for inclusion in catalogue.inclusions_mentioning(predicate):
            head = inclusion.head_predicate
            if head not in productive and head not in closure:
                worklist.append(head)
    return closure


# ---------------------------------------------------------------------------
# Reformulation result
# ---------------------------------------------------------------------------

@dataclass
class ReformulationResult:
    """Everything produced by one reformulation run.

    Use :meth:`rewritings` to stream conjunctive rewritings (each refers
    only to stored relations), :meth:`union` for the full union of
    conjunctive queries, and ``tree.statistics`` for the node counts the
    paper's Figure 3 reports.
    """

    query: ConjunctiveQuery
    tree: RuleGoalTree
    config: ReformulationConfig
    #: Descriptions used and predicates depended on — the invalidation key
    #: for caches layered on top (see :class:`ReformulationProvenance`).
    provenance: ReformulationProvenance = field(
        default=ReformulationProvenance(frozenset(), frozenset(), frozenset())
    )
    #: ``pdms.catalogue_version`` at build time.
    catalogue_version: int = 0
    _assembler: "_RewritingAssembler" = field(repr=False, default=None)
    _all: Optional[List[ConjunctiveQuery]] = field(default=None, repr=False)
    _stream: Optional[_LazySeq] = field(default=None, repr=False)
    #: Compiled shared union plan, attached lazily by
    #: :func:`repro.pdms.planning.ensure_plan`; lives and dies with this
    #: result, so plan validity automatically tracks the provenance signal
    #: that governs the result itself.
    _shared_plan: Optional[object] = field(default=None, repr=False, compare=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def rewritings(self) -> Iterator[ConjunctiveQuery]:
        """Stream the conjunctive rewritings (may contain subsumed duplicates
        unless ``config.remove_redundant_rewritings`` is set).

        Already-produced rewritings are memoized, so repeated partial
        consumption (e.g. several ``limit=k`` calls against one cached
        result) never re-runs the Step-3 enumeration from the start.  The
        stream is safe to consume from several threads concurrently.
        """
        if self._all is not None:
            yield from self._all
            return
        if self._stream is None:
            with self._lock:
                if self._stream is None:
                    self._stream = _LazySeq(self._assembler.rewritings())
        yield from self._stream

    def first_rewritings(self, count: int) -> List[ConjunctiveQuery]:
        """The first ``count`` rewritings (fewer if the enumeration is smaller)."""
        return list(itertools.islice(self.rewritings(), count))

    def all_rewritings(self) -> List[ConjunctiveQuery]:
        """All conjunctive rewritings, materialised and cached."""
        if self._all is None:
            rewritings = list(self.rewritings())
            if self.config.remove_redundant_rewritings:
                rewritings = remove_redundant_disjuncts(rewritings)
            self._all = rewritings
        return self._all

    def union(self) -> UnionQuery:
        """The reformulated query: a union of CQs over stored relations."""
        return UnionQuery(
            self.all_rewritings(), name=self.query.name, arity=self.query.arity
        )

    @property
    def statistics(self) -> TreeStatistics:
        """Node statistics of the rule-goal tree."""
        return self.tree.statistics


# ---------------------------------------------------------------------------
# Tree construction (Step 2)
# ---------------------------------------------------------------------------

class _TreeBuilder:
    """Builds the rule-goal tree for one query."""

    def __init__(self, pdms: PDMS, query: ConjunctiveQuery, config: ReformulationConfig):
        self._pdms = pdms
        self._query = query
        self._config = config
        self._catalogue = pdms.catalogue()
        self._fresh = FreshVariableFactory(prefix="_r")
        self._fresh.reserve(v.name for v in query.all_variables())
        self._productive: Optional[frozenset] = None
        if config.prune_dead_ends:
            self._productive = compute_productive_predicates(self._catalogue)
        self._coverable = frozenset(self._catalogue.inclusions_by_body_predicate)
        self._mcd_cache: Dict[tuple, List[MCD]] = {}
        self._stats = TreeStatistics()
        self._node_budget = config.max_nodes
        # Provenance accumulators (see ReformulationProvenance).
        self._used_origins: Set[str] = set()
        self._touched_predicates: Set[str] = set()
        self._dead_end_frontier: Set[str] = set()

    # -- public ------------------------------------------------------------------

    def build(self) -> RuleGoalTree:
        root = GoalNode(
            self._query.head,
            constraint=ConstraintSet(self._query.comparison_body()),
            parent=None,
            blocked=frozenset(),
            is_stored=False,
            depth=0,
            external=frozenset(self._query.head.variables()),
        )
        self._count_goal(root)
        tree = RuleGoalTree(root)

        query_rule = RuleNode(
            RuleNode.KIND_QUERY,
            description=self._query,
            origin=_QUERY_ORIGIN,
            parent=root,
            constraint=ConstraintSet(self._query.comparison_body()),
        )
        root.add_child(query_rule)
        self._count_rule()

        body_atoms = self._query.relational_body()
        frontier: deque = deque()
        for atom in body_atoms:
            other_vars: Set[Variable] = set()
            for other in body_atoms:
                if other is not atom:
                    other_vars |= other.variable_set()
            child = self._make_goal(
                atom,
                parent=query_rule,
                blocked=frozenset(),
                constraint=query_rule.constraint.project(atom.variable_set()),
                depth=1,
                external=frozenset(
                    atom.variable_set() & (root.external | other_vars)
                ),
            )
            query_rule.add_child(child)
            if not child.is_stored:
                frontier.append(child)

        self._expand_all(frontier)
        tree.statistics = self._stats
        tree.count_nodes()
        return tree

    # -- bookkeeping -------------------------------------------------------------

    def _count_goal(self, goal: GoalNode) -> None:
        self._stats.goal_nodes += 1
        if self._node_budget is not None and self._stats.total_nodes > self._node_budget:
            raise ReformulationError(
                f"rule-goal tree exceeded the configured maximum of "
                f"{self._node_budget} nodes"
            )

    def _count_rule(self) -> None:
        self._stats.rule_nodes += 1
        if self._node_budget is not None and self._stats.total_nodes > self._node_budget:
            raise ReformulationError(
                f"rule-goal tree exceeded the configured maximum of "
                f"{self._node_budget} nodes"
            )

    def _make_goal(
        self,
        atom: Atom,
        parent: RuleNode,
        blocked: frozenset,
        constraint: ConstraintSet,
        depth: int,
        external: frozenset,
    ) -> GoalNode:
        goal = GoalNode(
            atom,
            constraint=constraint,
            parent=parent,
            blocked=blocked,
            is_stored=self._catalogue.is_stored(atom.predicate),
            depth=depth,
            external=external,
        )
        self._count_goal(goal)
        self._touched_predicates.add(atom.predicate)
        return goal

    def provenance(self) -> ReformulationProvenance:
        """Provenance of the built tree (call after :meth:`build`)."""
        dependencies = set(self._touched_predicates)
        if self._dead_end_frontier:
            dependencies |= _unproductive_closure(
                self._catalogue,
                self._dead_end_frontier,
                self._productive if self._productive is not None else frozenset(),
            )
        return ReformulationProvenance(
            used_origins=frozenset(self._used_origins),
            touched_predicates=frozenset(self._touched_predicates),
            dependencies=frozenset(dependencies),
        )

    def _outside_vars(self, goal: GoalNode) -> Set[Variable]:
        """Variables visible outside the sibling group of ``goal``.

        For children of the query rule or of definitional rule nodes this
        is the ``external`` set of the rule's parent goal (the only
        interface between the rule body and the rest of the tree); for the
        single child of an inclusion rule node it is the child's own
        ``external`` set, which was computed from the covered siblings
        when the node was created.
        """
        parent_rule = goal.parent
        if parent_rule is None:
            return set(self._query.head.variables())
        if parent_rule.kind == RuleNode.KIND_INCLUSION:
            return set(goal.external)
        return set(parent_rule.parent.external)

    # -- frontier management -------------------------------------------------------

    def _expand_all(self, frontier: deque) -> None:
        order = self._config.expansion_order
        while frontier:
            if order is ExpansionOrder.BREADTH_FIRST:
                goal = frontier.popleft()
            elif order is ExpansionOrder.DEPTH_FIRST:
                goal = frontier.pop()
            else:  # FEWEST_OPTIONS_FIRST: cheap heuristic on applicable descriptions
                best_index = min(
                    range(len(frontier)), key=lambda i: self._option_count(frontier[i])
                )
                goal = frontier[best_index]
                del frontier[best_index]
            if goal.expanded or goal.is_stored:
                continue
            if self._config.max_depth is not None and goal.depth >= self._config.max_depth:
                goal.expanded = True
                continue
            for child in self._expand(goal):
                if not child.is_stored and not child.expanded:
                    frontier.append(child)

    def _option_count(self, goal: GoalNode) -> int:
        predicate = goal.label.predicate
        return len(self._catalogue.definitional_for(predicate)) + len(
            self._catalogue.inclusions_mentioning(predicate)
        )

    # -- expansion ---------------------------------------------------------------

    def _expand(self, goal: GoalNode) -> List[GoalNode]:
        """Perform every possible expansion of ``goal``; return new goal nodes."""
        goal.expanded = True
        if self._config.prune_unsatisfiable and not goal.constraint.is_satisfiable():
            self._stats.pruned_unsatisfiable += 1
            return []
        new_children: List[GoalNode] = []
        new_children.extend(self._definitional_expansions(goal))
        new_children.extend(self._inclusion_expansions(goal))
        return new_children

    # .. definitional (GAV-style) ..................................................

    def _definitional_expansions(self, goal: GoalNode) -> List[GoalNode]:
        predicate = goal.label.predicate
        produced: List[GoalNode] = []
        for normalized in self._catalogue.definitional_for(predicate):
            if not normalized.synthetic and normalized.origin in goal.blocked:
                continue
            renamed = normalized.rule.rename_apart(self._fresh)
            unifier = unify_atoms(renamed.head, goal.label)
            if unifier is None:
                continue
            body = apply_substitution_body(renamed.body, unifier)
            relational = [a for a in body if isinstance(a, Atom)]
            comparisons = [a for a in body if isinstance(a, ComparisonAtom)]
            # Unification may bind variables of the goal's label itself
            # (e.g. unifying ``SkilledPerson(pid, skill)`` with the head
            # ``SkilledPerson(sid, "Doctor")`` binds skill = "Doctor").
            # Those bindings restrict when this expansion applies and are
            # carried as equality constraints so rewritings enforce them.
            bindings = [
                ComparisonAtom(variable, "=", resolved)
                for variable in goal.label.variable_set()
                for resolved in [apply_substitution_term(variable, unifier)]
                if resolved != variable
            ]
            rule_constraint = goal.constraint.conjoin(comparisons).conjoin(bindings)
            if self._config.prune_unsatisfiable and not rule_constraint.is_satisfiable():
                self._stats.pruned_unsatisfiable += 1
                continue
            if self._config.prune_dead_ends and self._rule_is_dead_end(relational):
                self._stats.pruned_dead_end += 1
                continue
            rule_node = RuleNode(
                RuleNode.KIND_DEFINITIONAL,
                description=normalized,
                origin=normalized.origin,
                parent=goal,
                constraint=rule_constraint,
            )
            goal.add_child(rule_node)
            self._count_rule()
            self._used_origins.add(normalized.origin)
            blocked = goal.blocked
            if not normalized.synthetic:
                blocked = blocked | {normalized.origin}
            for atom in relational:
                other_vars: Set[Variable] = set()
                for other in relational:
                    if other is not atom:
                        other_vars |= other.variable_set()
                child = self._make_goal(
                    atom,
                    parent=rule_node,
                    blocked=blocked,
                    constraint=rule_constraint.project(atom.variable_set()),
                    depth=goal.depth + 1,
                    external=frozenset(
                        atom.variable_set() & (set(goal.external) | other_vars)
                    ),
                )
                rule_node.add_child(child)
                produced.append(child)
        return produced

    def _rule_is_dead_end(self, body: Sequence[Atom]) -> bool:
        """A definitional expansion is useless if some body goal can neither
        reach stored data nor be covered by a sibling's inclusion expansion."""
        assert self._productive is not None
        for atom in body:
            predicate = atom.predicate
            if predicate in self._productive:
                continue
            if predicate in self._coverable:
                continue
            # The pruning decision hinges on this predicate staying
            # unproductive and uncoverable; record it so provenance can
            # flag catalogue additions that would revive the expansion.
            self._dead_end_frontier.add(predicate)
            return True
        return False

    # .. inclusion (LAV-style) ......................................................

    def _inclusion_expansions(self, goal: GoalNode) -> List[GoalNode]:
        predicate = goal.label.predicate
        applicable = self._catalogue.inclusions_mentioning(predicate)
        if not applicable:
            return []

        siblings = goal.siblings()
        sibling_atoms = [s.label for s in siblings]
        my_index = siblings.index(goal)
        sibling_vars: Set[Variable] = set()
        for atom in sibling_atoms:
            sibling_vars |= atom.variable_set()
        outside = self._outside_vars(goal)
        exported = sorted(outside & sibling_vars)
        pseudo_query = ConjunctiveQuery(
            Atom(_CONTEXT_PREDICATE, exported), sibling_atoms
        )

        produced: List[GoalNode] = []
        for inclusion in applicable:
            if inclusion.origin in goal.blocked:
                continue
            mcds = self._mcds_for(pseudo_query, inclusion, my_index)
            for mcd in mcds:
                covered_nodes = frozenset(siblings[i] for i in mcd.covered)
                covered_constraint = goal.constraint
                for node in covered_nodes:
                    if node is not goal:
                        covered_constraint = covered_constraint.conjoin(node.constraint)
                # Equalities induced by the MCD must be enforced by the
                # rewriting; the view's own comparison atoms are implied by
                # the view's contents, so they only participate in the
                # satisfiability check, not in the output constraint.
                rule_constraint = covered_constraint.conjoin(mcd.equalities)
                view_comparisons = inclusion.view.definition.comparison_body()
                if self._config.prune_unsatisfiable and not rule_constraint.conjoin(
                    view_comparisons
                ).is_satisfiable():
                    self._stats.pruned_unsatisfiable += 1
                    continue
                rule_node = RuleNode(
                    RuleNode.KIND_INCLUSION,
                    description=inclusion,
                    origin=inclusion.origin,
                    parent=goal,
                    constraint=rule_constraint,
                    covers=covered_nodes,
                )
                goal.add_child(rule_node)
                self._count_rule()
                self._used_origins.add(inclusion.origin)
                uncovered_vars: Set[Variable] = set()
                for sibling in siblings:
                    if sibling not in covered_nodes:
                        uncovered_vars |= sibling.label.variable_set()
                child = self._make_goal(
                    mcd.view_atom,
                    parent=rule_node,
                    blocked=goal.blocked | {inclusion.origin},
                    constraint=rule_constraint.project(mcd.view_atom.variable_set()),
                    depth=goal.depth + 1,
                    external=frozenset(
                        mcd.view_atom.variable_set() & (outside | uncovered_vars)
                    ),
                )
                rule_node.add_child(child)
                produced.append(child)
        return produced

    def _mcds_for(
        self,
        pseudo_query: ConjunctiveQuery,
        inclusion: NormalizedInclusion,
        my_index: int,
    ) -> List[MCD]:
        if not self._config.memoize_mcds:
            return create_mcds(
                pseudo_query, inclusion.view, self._fresh, only_subgoal=my_index
            )
        key, canonical_query, inverse = self._canonicalise(pseudo_query, my_index, inclusion)
        cached = self._mcd_cache.get(key)
        if cached is None:
            cached = create_mcds(
                canonical_query,
                inclusion.view,
                FreshVariableFactory(prefix="_c"),
                only_subgoal=my_index,
            )
            self._mcd_cache[key] = cached
        else:
            self._stats.memoization_hits += 1
        # Translate the canonical MCDs back to the actual variable names.
        translated: List[MCD] = []
        for mcd in cached:
            fresh_map: Dict[Variable, Variable] = {}

            def back(term: Term) -> Term:
                if not is_variable(term):
                    return term
                if term in inverse:
                    return inverse[term]
                if term not in fresh_map:
                    fresh_map[term] = self._fresh("_mv")
                return fresh_map[term]

            args = [back(arg) for arg in mcd.view_atom.args]
            equalities = tuple(
                ComparisonAtom(back(eq.left), eq.op, back(eq.right))
                for eq in mcd.equalities
            )
            translated.append(
                MCD(
                    view=mcd.view,
                    view_atom=Atom(mcd.view_atom.predicate, args),
                    covered=mcd.covered,
                    created_for=mcd.created_for,
                    equalities=equalities,
                )
            )
        return translated

    def _canonicalise(
        self,
        pseudo_query: ConjunctiveQuery,
        my_index: int,
        inclusion: NormalizedInclusion,
    ) -> Tuple[tuple, ConjunctiveQuery, Dict[Variable, Variable]]:
        """Rename the pseudo-query's variables to positional names.

        Returns a hashable cache key, the canonical query, and the inverse
        renaming used to translate cached MCDs back.
        """
        mapping: Dict[Variable, Variable] = {}
        inverse: Dict[Variable, Variable] = {}

        def canon(term: Term) -> Term:
            if not is_variable(term):
                return term
            if term not in mapping:
                canonical = Variable(f"_x{len(mapping)}")
                mapping[term] = canonical
                inverse[canonical] = term
            return mapping[term]

        head_args = [canon(a) for a in pseudo_query.head.args]
        body = [
            Atom(atom.predicate, [canon(a) for a in atom.args])
            for atom in pseudo_query.relational_body()
        ]
        canonical_query = ConjunctiveQuery(Atom(_CONTEXT_PREDICATE, head_args), body)
        key = (
            inclusion.origin,
            inclusion.view.name,
            my_index,
            str(canonical_query.head),
            tuple(str(a) for a in body),
        )
        return key, canonical_query, inverse


# ---------------------------------------------------------------------------
# Rewriting assembly (Step 3)
# ---------------------------------------------------------------------------

class _RewritingAssembler:
    """Assembles conjunctive rewritings from a built rule-goal tree."""

    def __init__(
        self, query: ConjunctiveQuery, tree: RuleGoalTree, config: ReformulationConfig
    ):
        self._query = query
        self._tree = tree
        self._config = config
        self._rule_cache: Dict[int, _LazySeq] = {}
        self._cache_lock = threading.Lock()

    # -- public -------------------------------------------------------------------

    def rewritings(self) -> Iterator[ConjunctiveQuery]:
        root = self._tree.root
        emitted = set()
        for rule_node in root.children:
            for atoms, constraint in self._rule_rewritings(rule_node):
                rewriting = self._finalise(atoms, constraint)
                if rewriting is None:
                    continue
                key = (frozenset(map(str, rewriting.body)), str(rewriting.head))
                if key in emitted:
                    continue
                emitted.add(key)
                yield rewriting

    # -- assembly ------------------------------------------------------------------

    def _goal_options(self, goal: GoalNode) -> List[Tuple[frozenset, object]]:
        """Ways to *use* a goal node: (coverage set, source).

        ``source`` is ``None`` for stored leaves (the leaf atom itself is
        the rewriting) or a rule node to descend through.  Coverage is the
        set of sibling goal nodes satisfied by that choice.
        """
        if goal.is_stored:
            return [(frozenset([goal]), None)]
        options: List[Tuple[frozenset, object]] = []
        for rule_node in goal.children:
            if rule_node.kind == RuleNode.KIND_INCLUSION:
                coverage = rule_node.covers | {goal}
            else:
                coverage = frozenset([goal])
            options.append((coverage, rule_node))
        return options

    def _rule_rewritings(self, rule_node: RuleNode) -> Iterable:
        cached = self._rule_cache.get(rule_node.id)
        if cached is None:
            with self._cache_lock:
                cached = self._rule_cache.get(rule_node.id)
                if cached is None:
                    cached = _LazySeq(self._rule_rewritings_iter(rule_node))
                    self._rule_cache[rule_node.id] = cached
        return cached

    def _rule_rewritings_iter(
        self, rule_node: RuleNode
    ) -> Iterator[Tuple[Tuple[Atom, ...], ConstraintSet]]:
        children = rule_node.children
        if not children:
            # A rule node with no children (can happen for definitional rules
            # whose body is pure comparisons) contributes no atoms.
            yield ((), rule_node.constraint)
            return

        options_per_child = {child.id: self._goal_options(child) for child in children}
        all_children = list(children)

        def cover(
            remaining: frozenset,
            used: frozenset,
            atoms: Tuple[Atom, ...],
            constraint: ConstraintSet,
        ) -> Iterator[Tuple[Tuple[Atom, ...], ConstraintSet]]:
            if not remaining:
                yield atoms, constraint
                return
            # Deterministically attack the first uncovered child.
            target = min(remaining, key=lambda g: g.id)
            for child in all_children:
                if child.id in used:
                    continue
                for coverage, source in options_per_child[child.id]:
                    if target not in coverage:
                        continue
                    if source is None:
                        sub_results: Iterable = [((child.label,), child.constraint)]
                    else:
                        sub_results = self._rule_rewritings(source)
                    for sub_atoms, sub_constraint in sub_results:
                        merged = constraint.conjoin(sub_constraint)
                        yield from cover(
                            remaining - coverage,
                            used | {child.id},
                            atoms + sub_atoms,
                            merged,
                        )

        yield from cover(
            frozenset(children), frozenset(), (), rule_node.constraint
        )

    # -- finalisation -----------------------------------------------------------------

    def _finalise(
        self, atoms: Tuple[Atom, ...], constraint: ConstraintSet
    ) -> Optional[ConjunctiveQuery]:
        if not atoms:
            return None
        # Discard rewritings whose accumulated constraints are contradictory
        # (the paper: "If the resulting conjunctive query is unsatisfiable,
        # we discard it").  This is a correctness matter, not an optimization,
        # so it does not depend on the configuration.
        if not constraint.is_satisfiable():
            return None

        # Turn accumulated equality constraints into a substitution, so that
        # bindings forced by the mappings (``skill = "Doctor"`` from a
        # definitional head, ``f1 = f2`` from an MCD) flow into the head and
        # body instead of dangling as comparisons over missing variables.
        substitution, residual = self._equalities_to_substitution(constraint)
        if substitution is None:
            return None
        head = self._query.head.substitute(substitution)
        grounded_atoms = [atom.substitute(substitution) for atom in atoms]

        available: Set[Variable] = set()
        for atom in grounded_atoms:
            available.update(atom.variable_set())
        if not all(v in available for v in head.variables()):
            return None
        body: List = list(dict.fromkeys(grounded_atoms))
        for comparison in residual:
            comparison = comparison.substitute(substitution)
            if comparison.is_ground():
                if not comparison.evaluate_ground():
                    return None
                continue
            if not all(v in available for v in comparison.variables()):
                # A required comparison that the chosen stored atoms cannot
                # express would make the rewriting unsound; discard it.
                return None
            body.append(comparison)
        rewriting = ConjunctiveQuery(head, body)
        if self._config.minimize_rewritings:
            rewriting = minimize_query(rewriting)
        return rewriting

    def _equalities_to_substitution(
        self, constraint: ConstraintSet
    ) -> Tuple[Optional[Dict[Variable, Term]], List[ComparisonAtom]]:
        """Resolve the equality atoms of ``constraint`` into a substitution.

        Returns ``(substitution, residual)`` where ``residual`` holds the
        non-equality comparisons; returns ``(None, [])`` if the equalities
        are contradictory (two different constants forced equal), which
        should already have been caught by the satisfiability check.
        """
        head_vars = set(self._query.head_variables())
        substitution: Dict[Variable, Term] = {}
        residual: List[ComparisonAtom] = []

        def resolve(term: Term) -> Term:
            return apply_substitution_term(term, substitution)

        for comparison in constraint:
            if comparison.op != "=":
                residual.append(comparison)
                continue
            left = resolve(comparison.left)
            right = resolve(comparison.right)
            if left == right:
                continue
            left_is_var = is_variable(left)
            right_is_var = is_variable(right)
            if left_is_var and right_is_var:
                # Prefer eliminating the variable that is not a query head
                # variable so the rewriting's head keeps its original names.
                if left in head_vars and right not in head_vars:
                    substitution[right] = left  # type: ignore[index]
                else:
                    substitution[left] = right  # type: ignore[index]
            elif left_is_var:
                substitution[left] = right  # type: ignore[index]
            elif right_is_var:
                substitution[right] = left  # type: ignore[index]
            else:
                return None, []
        # Flatten chains (x -> y, y -> 5 becomes x -> 5) so that a single
        # application via ``Atom.substitute`` suffices.
        flattened = {
            variable: apply_substitution_term(variable, substitution)
            for variable in substitution
        }
        return flattened, residual


# ---------------------------------------------------------------------------
# Cheap query canonicalization (cache keys for the service layer)
# ---------------------------------------------------------------------------

_CANONICAL_HEAD = "__q__"


@dataclass(frozen=True)
class CanonicalQuery:
    """A query renamed to positional variables plus its cache signature.

    Two queries with equal ``signature`` are identical up to variable
    renaming, body-atom order, and head-predicate name — so they share
    one reformulation, and because the canonical head lists the original
    head arguments *positionally*, evaluating the canonical rewritings
    yields exactly the original query's answer rows.  The converse need
    not hold (symmetric self-join queries may canonicalise differently
    per atom order); a missed isomorphism costs a cache miss, never a
    wrong answer.
    """

    query: ConjunctiveQuery
    signature: str


def canonicalize_query(query: ConjunctiveQuery) -> CanonicalQuery:
    """Rename ``query`` to a canonical form in one cheap linear pass.

    Relational atoms are sorted by predicate and constant pattern, then
    variables are renamed positionally (head first, then sorted body);
    comparison atoms are renamed and sorted last.
    """
    def atom_sort_key(atom: Atom):
        return (
            atom.predicate,
            atom.arity,
            tuple(
                ("v",) if is_variable(arg) else ("c", repr(arg))
                for arg in atom.args
            ),
        )

    body_atoms = sorted(query.relational_body(), key=atom_sort_key)
    renaming: Dict[Variable, Variable] = {}

    def canon(term: Term) -> Term:
        if not is_variable(term):
            return term
        if term not in renaming:
            renaming[term] = Variable(f"_q{len(renaming)}")
        return renaming[term]

    head = Atom(_CANONICAL_HEAD, [canon(arg) for arg in query.head.args])
    canonical_body: List = [
        Atom(atom.predicate, [canon(arg) for arg in atom.args]) for atom in body_atoms
    ]
    comparisons = sorted(
        (
            ComparisonAtom(canon(comp.left), comp.op, canon(comp.right))
            for comp in query.comparison_body()
        ),
        key=str,
    )
    canonical_body.extend(comparisons)
    canonical = ConjunctiveQuery(head, canonical_body)
    signature = f"{canonical.head} :- " + ", ".join(str(a) for a in canonical.body)
    return CanonicalQuery(query=canonical, signature=signature)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def reformulate(
    pdms: PDMS,
    query: ConjunctiveQuery,
    config: Optional[ReformulationConfig] = None,
) -> ReformulationResult:
    """Reformulate ``query`` over the PDMS's stored relations.

    Parameters
    ----------
    pdms:
        The peer data management system (peers, storage descriptions, peer
        mappings).
    query:
        A conjunctive query over peer relations (of any peer).
    config:
        Optional :class:`ReformulationConfig`; defaults enable every
        optimization.

    Returns
    -------
    ReformulationResult
        Holds the rule-goal tree (with node statistics) and streams the
        conjunctive rewritings over stored relations.
    """
    config = config if config is not None else DEFAULT_CONFIG
    builder = _TreeBuilder(pdms, query, config)
    tree = builder.build()
    assembler = _RewritingAssembler(query, tree, config)
    return ReformulationResult(
        query=query,
        tree=tree,
        config=config,
        provenance=builder.provenance(),
        catalogue_version=pdms.catalogue_version,
        _assembler=assembler,
    )
