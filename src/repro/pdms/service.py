"""The query-answering service layer: cached, incremental, streaming.

The paper's headline scenario (Section 1, Figure 1) is *dynamism*: the
Earthquake Command Center joins the PDMS ad hoc and immediately reaches
every source through transitive mappings.  :class:`QueryService` makes
that scenario cheap to serve repeatedly:

* **Reformulation cache** — :class:`~repro.pdms.reformulation.ReformulationResult`
  objects are cached under a canonicalized query signature
  (:func:`~repro.pdms.reformulation.canonicalize_query`), so repeated and
  structurally isomorphic queries skip rule-goal-tree construction
  entirely and reuse the memoized rewritings.

* **Incremental catalogue churn** — :meth:`add_peer`,
  :meth:`add_peer_mapping`, :meth:`add_storage_description`,
  :meth:`remove_peer`, and :meth:`remove_peer_mapping` delegate to the
  wrapped :class:`~repro.pdms.system.PDMS` (whose normalised catalogue is
  itself maintained incrementally) and then invalidate **only** the cache
  entries whose rule-goal trees are provenance-affected, as judged by
  :meth:`ReformulationProvenance.affected_by
  <repro.pdms.reformulation.ReformulationProvenance.affected_by>` against
  the recorded :class:`~repro.pdms.system.CatalogueChange`.  An unrelated
  peer join evicts nothing.  Direct mutations on the underlying ``PDMS``
  are picked up too: the service replays the PDMS change log before every
  cache access.

* **Streaming first-k answers** — :meth:`answer` with ``limit=k`` threads
  the rewriting generator through :func:`~repro.pdms.execution.stream_answers`,
  so the first *k* answers return without enumerating all rewritings;
  :meth:`answer_batch` shares one federated source and the cache across
  a query mix.  Per-peer data is served through a no-copy
  :class:`~repro.pdms.execution.PeerFactSource`, and compiled union
  plans for the ``"shared"`` engine are cached alongside reformulations
  under the same invalidation signals.

* **Cross-call fragment materialization** — a
  :class:`~repro.pdms.materialization.FragmentCache` (enabled by default,
  sized by ``REPRO_FRAGMENT_CACHE_BYTES``) keeps fragment tables across
  calls under data-version tokens: repeated traffic over unchanged peer
  data skips the joins entirely, a write to one predicate invalidates
  only the fragments that read it, and :meth:`remove_peer` eagerly
  evicts the departed peer's dependents.  ``stats.fragments`` reports
  the hit/miss/admission/eviction counters.

* **Concurrency safety** — every cache structure and counter is guarded
  by one reentrant mutex: reformulation and plan compilation (which
  mutate the shared caches) run inside it, evaluation runs outside, so
  concurrent callers — e.g. through a
  :class:`~repro.pdms.distributed.cluster.ServiceCluster` — never corrupt
  the LRU order, lose invalidations, or double-count stats.

This module is the substrate later scaling work (sharding, async,
multi-backend execution) plugs into; see ``docs/pdms.md`` for the design
notes and invalidation rules, ``docs/materialization.md`` for the
fragment-cache design, and ``docs/distributed.md`` for the peer-boundary
runtime layered on top.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from ..config import adaptive_enabled, cache_tier_enabled
from ..config import race_margin as race_margin_from_env
from ..database.feedback import AdaptiveStats, QErrorLog
from ..database.instance import Instance
from ..database.planner import CardinalityCostModel
from ..datalog.evaluation import FactsLike
from ..datalog.queries import ConjunctiveQuery
from ..errors import EvaluationError, PDMSConfigurationError
from ..obs.metrics import METRICS_SCHEMA_VERSION, MetricsRegistry
from ..obs.trace import current_span, get_tracer
from .optimizations import DEFAULT_CONFIG, ReformulationConfig
from .peer import Peer
from .execution import (
    PeerFactSource,
    Row,
    validate_engine,
    default_engine,
    evaluate_reformulation,
    federate_if_per_peer,
    get_engine,
    is_per_peer_data,
    stream_answers,
)
from .mappings import StorageDescription
from .materialization import (
    FragmentCache,
    FragmentCacheStats,
    fragment_cache_from_env,
)
from .planning import UnionPlan, ensure_plan
from .reformulation import (
    CanonicalQuery,
    ReformulationResult,
    canonicalize_query,
    reformulate,
)
from .system import PDMS, AnyPeerMapping, CatalogueChange


@dataclass
class ServiceStats:
    """Counters describing how the caches behaved so far.

    The flat counters describe the reformulation/plan caches; the
    ``fragments`` member carries the cross-call
    :class:`~repro.pdms.materialization.FragmentCache` counters (shared
    with the live cache object, so it is always current; all zeros when
    fragment caching is disabled).
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    #: Union plans compiled for plan-consuming engines (e.g. ``"shared"``).
    plans_compiled: int = 0
    #: Plans dropped because their reformulation entry was dropped.
    plan_invalidations: int = 0
    #: Fragment-cache counters (hits/misses/admissions/evictions/…).
    fragments: FragmentCacheStats = field(default_factory=FragmentCacheStats)
    #: Self-tuning loop counters (q-error percentiles, corrections, races,
    #: re-plans; all zeros when ``REPRO_ADAPTIVE`` is off).
    adaptive: AdaptiveStats = field(default_factory=AdaptiveStats)

    @property
    def lookups(self) -> int:
        """Total cache lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, object]:
        """A flat snapshot of every counter (status endpoints, examples)."""
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "plans_compiled": self.plans_compiled,
            "plan_invalidations": self.plan_invalidations,
            "fragments": self.fragments.as_dict(),
            "adaptive": self.adaptive.as_dict(),
        }


#: Champion/challenger races a cached plan may run per adopted champion —
#: racing doubles the evaluation work, so it has to be bounded.
_RACE_BUDGET = 3


@dataclass
class _AdaptiveState:
    """Per-signature adaptive planning state (guarded by the service mutex)."""

    #: The incumbent plan live traffic is served with.
    plan: UnionPlan
    #: Feedback-log generation the champion was last (re)validated at.
    generation: int
    #: Remaining championship races for this champion.
    races_left: int = _RACE_BUDGET


class QueryService:
    """A query-answering front end over one :class:`PDMS`.

    Parameters
    ----------
    pdms:
        The system to serve; created empty when omitted.
    config:
        :class:`ReformulationConfig` used for every cached reformulation.
        One service instance serves one configuration — callers comparing
        ablations should run one service per configuration.
    engine:
        Default execution engine — any registered name
        (``"backtracking"``, ``"plan"``, or ``"shared"`` by default).
    data:
        Stored-relation data: either a single fact source, or a mapping
        from peer name to that peer's :class:`Instance` (kept per peer —
        probes are federated to the live instances without copying, and
        :meth:`remove_peer` also drops the peer's data).
    max_entries:
        Cache capacity; least-recently-used entries are evicted beyond it.
    fragment_cache:
        A prebuilt :class:`~repro.pdms.materialization.FragmentCache` to
        serve cross-call fragment materialization from (e.g. one shared
        by several services over the same data).  An externally supplied
        cache is never cleared or eagerly invalidated by this service
        (other services may hold warm entries in it); version tokens
        alone keep it correct.
    fragment_cache_bytes:
        Byte budget for a service-owned fragment cache; ``0`` disables
        cross-call fragment caching.  When neither parameter is given the
        budget comes from ``REPRO_FRAGMENT_CACHE_BYTES`` (64 MiB default).
    adaptive:
        Whether the self-tuning loop runs (``None`` follows
        ``REPRO_ADAPTIVE``, off by default): fragment evaluations over
        the service's own data are measured into a
        :class:`~repro.database.feedback.QErrorLog`, estimation errors
        become version-scoped cardinality corrections, and plans are
        recompiled and raced champion/challenger as corrections
        accumulate.  See ``docs/adaptivity.md``.
    race_margin:
        Cost ratio within which a challenger plan is raced against the
        champion (``None`` follows ``REPRO_RACE_MARGIN``, default 2.0;
        must be >= 1.0).
    feedback:
        A prebuilt :class:`~repro.database.feedback.QErrorLog` to record
        into (e.g. one shared across services, or a measurement-only log
        with ``adaptive`` left off).  With ``adaptive`` on and no log
        given, the service creates its own.
    cache_tier:
        A :class:`~repro.pdms.distributed.cache_tier.CacheTierClient` the
        service-owned fragment cache consults between its local LRU and a
        fresh compute (``None`` follows ``REPRO_CACHE_TIER``: when that
        knob is on, the process-global tier is attached).  Ignored when
        ``fragment_cache`` is supplied externally — wiring a shared cache
        to a shared tier is its owner's decision.  See
        ``docs/sharding.md``.
    """

    def __init__(
        self,
        pdms: Optional[PDMS] = None,
        config: Optional[ReformulationConfig] = None,
        engine: Optional[str] = None,
        data: Union[FactsLike, Mapping[str, Instance], None] = None,
        max_entries: int = 1024,
        fragment_cache: Optional[FragmentCache] = None,
        fragment_cache_bytes: Optional[int] = None,
        adaptive: Optional[bool] = None,
        race_margin: Optional[float] = None,
        feedback: Optional[QErrorLog] = None,
        cache_tier: Optional[object] = None,
    ):
        try:
            engine = validate_engine(engine if engine is not None else default_engine())
            self._owns_fragment_cache = fragment_cache is None
            if fragment_cache is not None:
                self._fragments: Optional[FragmentCache] = fragment_cache
            elif fragment_cache_bytes is not None:
                if fragment_cache_bytes < 0:
                    raise EvaluationError(
                        "fragment_cache_bytes must be >= 0 (0 disables caching)"
                    )
                self._fragments = (
                    FragmentCache(max_bytes=fragment_cache_bytes)
                    if fragment_cache_bytes > 0
                    else None
                )
            else:
                self._fragments = fragment_cache_from_env()
            if self._fragments is not None and self._owns_fragment_cache:
                # Only service-owned caches get the shared tier attached:
                # an externally supplied cache is the caller's to wire up.
                tier = cache_tier
                if tier is None and cache_tier_enabled():
                    from .distributed.cache_tier import default_cache_tier

                    tier = default_cache_tier()
                if tier is not None:
                    self._fragments.attach_tier(tier)
            self._adaptive = adaptive if adaptive is not None else adaptive_enabled()
            margin = race_margin if race_margin is not None else race_margin_from_env()
            if margin < 1.0:
                raise EvaluationError(
                    f"race_margin must be >= 1.0, got {margin}"
                )
            self._race_margin = float(margin)
        except EvaluationError as exc:
            # Construction-time mistakes are configuration errors.
            raise PDMSConfigurationError(str(exc)) from exc
        if max_entries < 1:
            raise PDMSConfigurationError("max_entries must be at least 1")
        # One reentrant mutex guards every cache structure and counter:
        # the service is safe under concurrent callers (the cluster layer
        # leans on this).  Reformulation and plan compilation happen
        # *inside* the lock — they mutate the shared caches — while
        # evaluation (the long, read-mostly part) runs outside it.
        self._mutex = threading.RLock()
        self._pdms = pdms if pdms is not None else PDMS()
        self._config = config if config is not None else DEFAULT_CONFIG
        self._engine = engine
        self._max_entries = max_entries
        self._cache: "OrderedDict[str, ReformulationResult]" = OrderedDict()
        #: Compiled union plans, keyed like the reformulation cache and
        #: invalidated by exactly the same provenance/eviction signals.
        self._plans: Dict[str, UnionPlan] = {}
        self._seen_version = self._pdms.catalogue_version
        self._stats = ServiceStats()
        if self._fragments is not None:
            # Alias the live cache's counters so `stats.fragments` is
            # always current without copying.
            self._stats.fragments = self._fragments.stats
        self._feedback = (
            feedback
            if feedback is not None
            else (QErrorLog() if self._adaptive else None)
        )
        if self._feedback is not None:
            # Same aliasing treatment for the feedback counters.
            self._stats.adaptive = self._feedback.stats
        #: Per-signature champion plans (adaptive mode only), invalidated
        #: together with the plan cache.
        self._champions: Dict[str, _AdaptiveState] = {}
        self._peer_data: Dict[str, Instance] = {}
        self._flat_data: Optional[FactsLike] = None
        self._combined: Optional[FactsLike] = None
        #: The unified metrics registry: the existing counter objects
        #: register as weakly held pull collectors, the answer path feeds
        #: one push histogram.  :meth:`metrics_snapshot` renders it;
        #: ``ServiceCluster.describe()["metrics"]`` surfaces it.
        self.metrics = MetricsRegistry()
        self.metrics.register_collector("service", self._collect_service_metrics)
        self._answer_latency = self.metrics.histogram("service.answer_seconds")
        if data is not None:
            self.set_data(data)

    # -- introspection -------------------------------------------------------------

    @property
    def pdms(self) -> PDMS:
        """The wrapped PDMS (mutating it directly is fine; the service
        replays its change log before every cache access)."""
        return self._pdms

    @property
    def stats(self) -> ServiceStats:
        """Cache behaviour counters (the **live**, mutating object).

        ``stats.fragments`` and ``stats.adaptive`` alias the underlying
        caches' counters, so values read here move while the service is
        answering.  Before/after comparisons should use
        :meth:`stats_snapshot`.
        """
        return self._stats

    def stats_snapshot(self) -> ServiceStats:
        """An independent copy of every counter, frozen at this moment.

        Unlike :attr:`stats`, nothing in the returned object aliases live
        state: ``fragments`` and ``adaptive`` are copied, so two snapshots
        taken around an operation diff cleanly.  q-error percentiles are
        refreshed from the feedback log's sample reservoir first.
        """
        with self._mutex:
            if self._feedback is not None:
                self._feedback.refresh_percentiles()
            s = self._stats
            return ServiceStats(
                hits=s.hits,
                misses=s.misses,
                invalidations=s.invalidations,
                evictions=s.evictions,
                plans_compiled=s.plans_compiled,
                plan_invalidations=s.plan_invalidations,
                fragments=replace(s.fragments),
                adaptive=s.adaptive.snapshot(),
            )

    def _collect_service_metrics(self) -> Dict[str, object]:
        """Pull collector feeding the registry the cache counters."""
        return self.stats_snapshot().as_dict()

    def metrics_snapshot(self) -> Dict[str, object]:
        """Everything the unified registry knows, frozen at this moment.

        Combines the push-side instruments (the answer-latency histogram)
        with every registered pull collector — cache counters, and on a
        distributed deployment the scatter/latency/transport snapshots
        the cluster binds in (see
        :meth:`~repro.pdms.distributed.source.RemotePeerFactSource.bind_metrics`).
        """
        return self.metrics.snapshot()

    @property
    def feedback(self) -> Optional[QErrorLog]:
        """The estimation-feedback log (``None`` unless adaptive or supplied)."""
        return self._feedback

    @property
    def adaptive(self) -> bool:
        """Whether the self-tuning loop is on for this service."""
        return self._adaptive

    @property
    def catalogue_version(self) -> int:
        """The underlying PDMS's catalogue version."""
        return self._pdms.catalogue_version

    @property
    def cache_size(self) -> int:
        """Number of currently cached reformulations."""
        return len(self._cache)

    @property
    def plan_cache_size(self) -> int:
        """Number of currently cached compiled union plans.

        Adaptive services keep their plans as champions (one per query
        signature, possibly racing challengers); static plans and
        champions never coexist for one signature, so the sum counts
        each cached query once."""
        return len(self._plans) + len(self._champions)

    @property
    def fragment_cache(self) -> Optional[FragmentCache]:
        """The cross-call fragment cache (``None`` when disabled)."""
        return self._fragments

    def cached_signatures(self) -> Tuple[str, ...]:
        """Signatures currently in the cache (LRU order, oldest first)."""
        with self._mutex:
            return tuple(self._cache)

    # -- data management -----------------------------------------------------------

    def set_data(self, data: Union[FactsLike, Mapping[str, Instance]]) -> None:
        """Replace the stored-relation data the service answers over."""
        with self._mutex:
            self._peer_data = {}
            self._flat_data = None
            if is_per_peer_data(data):
                self._peer_data = dict(data)  # type: ignore[arg-type]
            else:
                self._flat_data = data  # type: ignore[assignment]
            self._combined = None

    def set_peer_data(self, peer_name: str, instance: Instance) -> None:
        """Attach (or replace) one peer's stored-relation instance."""
        with self._mutex:
            if self._flat_data is not None:
                raise PDMSConfigurationError(
                    "service holds a flat fact source; per-peer data is unavailable"
                )
            self._peer_data[peer_name] = instance
            self._combined = None

    def _data(self, override: Union[FactsLike, Mapping[str, Instance], None]) -> FactsLike:
        if override is not None:
            return federate_if_per_peer(override)
        with self._mutex:
            if self._flat_data is not None:
                return self._flat_data
            if self._combined is None:
                # No copy: probes route to the live per-peer instances.  The
                # federated view is rebuilt whenever the peer-data set changes.
                self._combined = PeerFactSource(self._peer_data)
            return self._combined

    # -- catalogue churn -----------------------------------------------------------

    def add_peer(self, peer: Union[Peer, str], data: Optional[Instance] = None) -> Peer:
        """Register a peer joining the system, optionally with its data."""
        with self._mutex:
            if data is not None and self._flat_data is not None:
                # Validate before touching the PDMS so a rejected call leaves
                # the system unchanged (and retryable).
                raise PDMSConfigurationError(
                    "service holds a flat fact source; per-peer data is unavailable"
                )
            added = self._pdms.add_peer(peer)
            if data is not None:
                self.set_peer_data(added.name, data)
            self._sync()
            return added

    def add_peer_mapping(self, mapping: AnyPeerMapping) -> AnyPeerMapping:
        """Register a peer mapping; invalidates only provenance-affected entries."""
        with self._mutex:
            added = self._pdms.add_peer_mapping(mapping)
            self._sync()
            return added

    def add_storage_description(self, description: StorageDescription) -> StorageDescription:
        """Register a storage description; invalidates only affected entries."""
        with self._mutex:
            added = self._pdms.add_storage_description(description)
            self._sync()
            return added

    def remove_peer(self, peer_name: str) -> CatalogueChange:
        """Remove a peer, its descriptions, and its per-peer data.

        Fragments whose tables read the departed peer's stored relations
        are evicted eagerly — the version tokens would stop them being
        *served* anyway (the owner set changed), but reclaiming the bytes
        now keeps the budget for fragments that can still hit.
        """
        with self._mutex:
            change = self._pdms.remove_peer(peer_name)
            departed = self._peer_data.pop(peer_name, None)
            if departed is not None:
                self._combined = None
                if self._fragments is not None and self._owns_fragment_cache:
                    # A shared external cache may hold other services' valid
                    # entries for identically named relations; leave those to
                    # version-token staleness and the LRU.
                    self._fragments.invalidate_relations(departed.relations())
                if self._feedback is not None:
                    # Cardinality corrections over the departed peer's
                    # relations would be token-rejected anyway; drop them
                    # eagerly like the fragment entries above.
                    self._feedback.invalidate_relations(departed.relations())
            self._sync()
            return change

    def remove_peer_mapping(self, name: str) -> CatalogueChange:
        """Remove the peer mapping called ``name``."""
        with self._mutex:
            change = self._pdms.remove_peer_mapping(name)
            self._sync()
            return change

    def _drop_plan(self, signature: str) -> None:
        champion = self._champions.pop(signature, None)
        if self._plans.pop(signature, None) is not None or champion is not None:
            self._stats.plan_invalidations += 1

    def _sync(self) -> None:
        """Replay PDMS catalogue changes and evict affected cache entries.

        Compiled union plans are keyed like the reformulation cache and
        ride the same provenance signal: whenever an entry goes, its plan
        goes with it.
        """
        with self._mutex:
            self._sync_locked()

    def _sync_locked(self) -> None:
        if self._seen_version == self._pdms.catalogue_version:
            return
        for change in self._pdms.changes_since(self._seen_version):
            if change.full:
                # The bounded change log no longer covers our cursor;
                # selective invalidation is impossible.
                self._stats.invalidations += len(self._cache)
                self._stats.plan_invalidations += len(self._plans)
                self._cache.clear()
                self._plans.clear()
                self._champions.clear()
                if self._fragments is not None and self._owns_fragment_cache:
                    self._fragments.clear()
                break
            if not (change.affected_predicates or change.removed_origins):
                continue
            if (
                self._fragments is not None
                and self._owns_fragment_cache
                and change.affected_predicates
            ):
                # Fragment tables read *stored* relations; a catalogue
                # change naming one (replication-style descriptions do)
                # evicts the dependent entries.  Peer-relation predicates
                # simply never intersect, making this a cheap no-op.
                self._fragments.invalidate_relations(change.affected_predicates)
            if self._feedback is not None and change.affected_predicates:
                self._feedback.invalidate_relations(change.affected_predicates)
            stale = [
                signature
                for signature, result in self._cache.items()
                if result.provenance.affected_by(
                    change.affected_predicates, change.removed_origins
                )
            ]
            for signature in stale:
                del self._cache[signature]
                self._drop_plan(signature)
            self._stats.invalidations += len(stale)
        self._seen_version = self._pdms.catalogue_version

    # -- the reformulation cache -----------------------------------------------------

    def reformulate(self, query: ConjunctiveQuery) -> ReformulationResult:
        """The (cached) reformulation serving ``query``.

        The returned result is built for the *canonical* form of the
        query: variables are positionally renamed and the head predicate
        is ``__q__``, but head argument positions — and therefore answer
        rows — match the original query exactly.
        """
        return self._lookup(canonicalize_query(query))[1]

    def _lookup(self, canonical: CanonicalQuery) -> Tuple[str, ReformulationResult]:
        with self._mutex:
            self._sync_locked()
            result = self._cache.get(canonical.signature)
            if result is not None:
                self._stats.hits += 1
                current_span().set("reformulation", "hit")
                self._cache.move_to_end(canonical.signature)
                return canonical.signature, result
            self._stats.misses += 1
            current_span().set("reformulation", "miss")
            with current_span().child("query.reformulate"):
                result = reformulate(
                    self._pdms, canonical.query, config=self._config
                )
            # No eager materialisation: a cold `limit=k` call consumes only a
            # prefix of the rewriting enumeration, and the result memoizes
            # whatever it produced so future hits continue where it stopped.
            self._cache[canonical.signature] = result
            while len(self._cache) > self._max_entries:
                evicted, _ = self._cache.popitem(last=False)
                self._drop_plan(evicted)
                self._stats.evictions += 1
            return canonical.signature, result

    def _plan_for(
        self, signature: str, result: ReformulationResult, source: FactsLike
    ) -> UnionPlan:
        """The compiled union plan for a cached reformulation entry.

        Compiled lazily (incrementally — compilation tracks the rewriting
        stream) and cached under the entry's signature; a stale plan
        (whose result was invalidated and re-reformulated) is recompiled.
        """
        with self._mutex:
            plan = self._plans.get(signature)
            if plan is None or plan.result is not result:
                with current_span().child("plan.compile"):
                    plan = ensure_plan(result, source)
                self._plans[signature] = plan
                self._stats.plans_compiled += 1
            return plan

    def _adaptive_plan(
        self,
        signature: str,
        result: ReformulationResult,
        source: FactsLike,
        racing: bool,
    ) -> Tuple[UnionPlan, Optional[UnionPlan]]:
        """The champion plan for ``signature`` and, possibly, a challenger.

        The champion is compiled with the feedback log attached, so its
        join ordering applies the corrections known at compile time and
        its execution keeps measuring.  Whenever the log's ``generation``
        moved since the champion was validated (new or materially changed
        corrections), a candidate is recompiled against the current
        corrections: a differently shaped candidate within
        ``race_margin`` of the champion's corrected cost becomes a
        *challenger* to race (budgeted per champion); a candidate cheaper
        than the champion after the budget is spent is adopted outright
        (its shape already proved itself or corrections are unambiguous).
        Called under the service mutex.
        """
        feedback = self._feedback
        state = self._champions.get(signature)
        if state is None or state.plan.result is not result:
            with current_span().child("plan.compile", adaptive=True):
                plan = UnionPlan(
                    result,
                    CardinalityCostModel.pinless(source),
                    feedback=feedback,
                )
            state = _AdaptiveState(plan=plan, generation=feedback.generation)
            self._champions[signature] = state
            self._stats.plans_compiled += 1
            return state.plan, None
        if not racing or feedback.generation == state.generation:
            return state.plan, None
        state.generation = feedback.generation
        with current_span().child("plan.compile", adaptive=True, candidate=True):
            candidate = UnionPlan(
                result, CardinalityCostModel.pinless(source), feedback=feedback
            )
        candidate_cost = candidate.estimated_cost()
        champion_cost = state.plan.estimated_cost()
        if set(candidate.nodes) == set(state.plan.nodes):
            # Same shape — corrections did not change the plan, so the
            # candidate is the same execution with refreshed estimates.
            # Adopt it without racing: future observations then measure
            # q-error against current knowledge, not the original guess.
            state.plan = candidate
            return state.plan, None
        if state.races_left <= 0:
            if candidate_cost < champion_cost:
                state.plan = candidate
            return state.plan, None
        if candidate_cost <= champion_cost * self._race_margin:
            state.races_left -= 1
            return state.plan, candidate
        return state.plan, None

    def _evaluate_candidate(
        self,
        result: ReformulationResult,
        source: FactsLike,
        engine: str,
        plan: UnionPlan,
        feedback: Optional[QErrorLog],
    ) -> Tuple[Set[Row], float]:
        """One timed, cache-less evaluation of a candidate plan (racing)."""
        started = time.perf_counter()
        rows = evaluate_reformulation(
            result, source, engine=engine, plan=plan, cache=None, feedback=feedback
        )
        return rows, time.perf_counter() - started

    def _race(
        self,
        signature: str,
        result: ReformulationResult,
        source: FactsLike,
        engine: str,
        champion: UnionPlan,
        challenger: UnionPlan,
        feedback: QErrorLog,
    ) -> Set[Row]:
        """Race champion vs challenger on one live query.

        Both plans evaluate fully (no cross-call cache, so the timing is
        the plans' own); the challenger is adopted only when its answer
        set is *identical* and it was faster.  The champion's rows are
        what the caller is served either way — a losing or mismatching
        challenger never contributes rows to an answer.
        """
        with current_span().child("plan.execute", role="champion", racing=True):
            champion_rows, champion_seconds = self._evaluate_candidate(
                result, source, engine, champion, feedback
            )
        with current_span().child("plan.execute", role="challenger", racing=True):
            challenger_rows, challenger_seconds = self._evaluate_candidate(
                result, source, engine, challenger, feedback
            )
        with self._mutex:
            feedback.stats.races_run += 1
            if challenger_rows != champion_rows:
                # Should be impossible (all plans of one reformulation are
                # answer-equivalent); counted loudly, champion kept.
                feedback.stats.races_mismatched += 1
            elif challenger_seconds < champion_seconds:
                state = self._champions.get(signature)
                if state is not None and state.plan is champion:
                    state.plan = challenger
                    state.races_left = _RACE_BUDGET
                    feedback.stats.races_won += 1
        return champion_rows

    def clear_cache(self) -> None:
        """Drop every cached reformulation, plan, and fragment table
        (counters are preserved).

        An externally supplied fragment cache is left alone — other
        services may be serving warm entries from it; clear it directly
        if that is really wanted."""
        with self._mutex:
            self._cache.clear()
            self._plans.clear()
            self._champions.clear()
            if self._fragments is not None and self._owns_fragment_cache:
                self._fragments.clear()

    # -- answering -------------------------------------------------------------------

    def answer(
        self,
        query: ConjunctiveQuery,
        limit: Optional[int] = None,
        engine: Optional[str] = None,
        data: Union[FactsLike, Mapping[str, Instance], None] = None,
    ) -> Set[Row]:
        """Answer ``query`` over the service's data (set semantics).

        With ``limit=k`` the evaluation streams: rewritings are pulled
        from the (cached) reformulation one at a time and evaluation
        stops once ``k`` distinct answers are known — a subset of the
        full answer set.  Plan-consuming engines (``"shared"``) reuse the
        compiled union plan cached alongside the reformulation.

        In adaptive mode a full-answer call may additionally *race* the
        cached champion plan against a freshly corrected challenger (see
        ``docs/adaptivity.md``); the served rows always come from the
        champion.
        """
        parent = current_span()
        span = (
            parent.child("query.answer")
            if parent.recording
            else get_tracer().start_trace("query.answer")
        )
        started = time.perf_counter()
        try:
            with span:
                prepared = self._prepare(query, engine, data, racing=limit is None)
                engine, source, result, plan, cache, feedback, sig, challenger = (
                    prepared
                )
                if span.recording:
                    span.set("engine", engine)
                    if limit is not None:
                        span.set("limit", limit)
                if challenger is not None and plan is not None and feedback is not None:
                    rows = self._race(
                        sig, result, source, engine, plan, challenger, feedback
                    )
                else:
                    with span.child("plan.execute", engine=engine):
                        rows = evaluate_reformulation(
                            result,
                            source,
                            engine=engine,
                            limit=limit,
                            plan=plan,
                            cache=cache,
                            feedback=feedback,
                        )
                if span.recording:
                    span.set("rows", len(rows))
                return rows
        finally:
            self._answer_latency.observe(time.perf_counter() - started)

    def _prepare(
        self,
        query: ConjunctiveQuery,
        engine: Optional[str],
        data: Union[FactsLike, Mapping[str, Instance], None],
        racing: bool = False,
    ):
        """Resolve engine/data/reformulation/plan/cache for one call.

        Runs entirely under the service mutex so concurrent callers see a
        consistent (source, reformulation, plan) triple; the evaluation
        itself happens outside the lock.  Returns
        ``(engine, source, result, plan, cache, feedback, signature,
        challenger)``; ``challenger`` is non-``None`` only when
        ``racing`` and the adaptive loop proposed a plan to race.
        """
        engine = validate_engine(engine if engine is not None else self._engine)
        with self._mutex:
            source = self._data(data)
            signature, result = self._lookup(canonicalize_query(query))
            # The fragment cache holds one entry per fragment key, keyed to
            # the service's own data by version token.  A one-off data
            # override would churn those warm entries (admit under its own
            # tokens, evicting same-key entries), so overrides bypass the
            # cache; the identity checks keep answer_batch's pre-resolved
            # shared source on the cached path.  Feedback follows the same
            # rule: corrections must describe the service's own data.
            own_data = (
                data is None or source is self._flat_data or source is self._combined
            )
            cache = self._fragments if own_data else None
            feedback = self._feedback if own_data else None
            plan = None
            challenger = None
            if getattr(get_engine(engine), "uses_plans", False):
                if self._adaptive and feedback is not None:
                    plan, challenger = self._adaptive_plan(
                        signature, result, source, racing
                    )
                else:
                    plan = self._plan_for(signature, result, source)
            return engine, source, result, plan, cache, feedback, signature, challenger

    def stream(
        self,
        query: ConjunctiveQuery,
        engine: Optional[str] = None,
        data: Union[FactsLike, Mapping[str, Instance], None] = None,
    ) -> Iterator[Row]:
        """Yield distinct answers to ``query`` as rewritings evaluate.

        The iterator is a *snapshot*: it keeps evaluating the
        reformulation that was cached when it was created, even if the
        catalogue changes (and the cache entry is evicted) while it is
        being consumed.  Callers who need post-churn answers should call
        :meth:`answer` (or :meth:`stream` again) after the change.
        """
        engine, source, result, plan, cache, feedback, _, _ = self._prepare(
            query, engine, data
        )
        return stream_answers(
            result, source, engine=engine, plan=plan, cache=cache, feedback=feedback
        )

    def answer_batch(
        self,
        queries: Sequence[ConjunctiveQuery],
        limit: Optional[int] = None,
        engine: Optional[str] = None,
        data: Union[FactsLike, Mapping[str, Instance], None] = None,
    ) -> List[Set[Row]]:
        """Answer a query mix over one shared federated source and cache.

        The data source is resolved once for the whole batch and every
        query goes through the reformulation cache, so repeated or
        isomorphic queries in the mix are reformulated once.
        """
        shared = self._data(data)
        return [
            self.answer(query, limit=limit, engine=engine, data=shared)
            for query in queries
        ]

    def warm(self, queries: Sequence[ConjunctiveQuery]) -> int:
        """Pre-populate the cache for a query mix; returns the miss count."""
        before = self._stats.misses
        for query in queries:
            self.reformulate(query)
        return self._stats.misses - before

    def __repr__(self) -> str:
        return (
            f"QueryService({self._pdms.name!r}: {len(self._cache)} cached, "
            f"v{self._pdms.catalogue_version}, "
            f"{self._stats.hits}h/{self._stats.misses}m)"
        )
