"""Complexity classification of a PDMS (Theorems 3.1–3.3).

Section 3 of the paper characterises when finding all certain answers is
tractable.  :func:`analyze_pdms` inspects a PDMS specification and reports
which case applies:

* **Theorem 3.1** — arbitrary PPL: undecidable in general; with only
  inclusion descriptions and an *acyclic* inclusion graph (Definition 3.1),
  polynomial time.
* **Theorem 3.2** — acyclic inclusions plus equalities: polynomial when
  equalities are projection-free and definitional heads do not appear on
  the right-hand side of other descriptions; co-NP-complete when equality
  storage descriptions project, or when right-hand sides are unions.
* **Theorem 3.3** — comparison predicates: polynomial when they are
  confined to storage descriptions and bodies of definitional mappings
  (and the query); co-NP-complete otherwise.

The report also says whether the reformulation algorithm is *complete*
(returns all certain answers) for this PDMS, which is the case exactly in
the polynomial cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from .mappings import (
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    StorageDescription,
)
from .system import PDMS


class ComplexityClass(str, Enum):
    """Data complexity of finding all certain answers."""

    POLYNOMIAL = "polynomial"
    CONP_COMPLETE = "co-NP-complete"
    UNDECIDABLE = "undecidable"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ComplexityReport:
    """Outcome of :func:`analyze_pdms`.

    Attributes
    ----------
    complexity:
        The data-complexity class of finding all certain answers.
    theorem:
        Which theorem/bullet of the paper justifies the classification.
    tractable:
        Convenience flag, ``True`` iff ``complexity`` is polynomial.
    algorithm_complete:
        Whether the reformulation algorithm is guaranteed to return *all*
        certain answers for this PDMS (it always returns only certain
        answers).
    reasons:
        Human-readable notes explaining the classification.
    inclusion_graph_acyclic:
        Result of the Definition 3.1 acyclicity test on inclusion mappings.
    """

    complexity: ComplexityClass
    theorem: str
    tractable: bool
    algorithm_complete: bool
    reasons: List[str] = field(default_factory=list)
    inclusion_graph_acyclic: bool = True

    def __str__(self) -> str:
        notes = "; ".join(self.reasons) if self.reasons else "no special features"
        return (
            f"{self.complexity} ({self.theorem}); "
            f"algorithm {'complete' if self.algorithm_complete else 'sound but incomplete'}: "
            f"{notes}"
        )


def build_inclusion_graph(pdms: PDMS) -> Dict[str, Set[str]]:
    """The directed graph of Definition 3.1 over peer relations.

    There is an arc from relation ``R`` to relation ``S`` if some inclusion
    peer mapping ``Q1 ⊆ Q2`` mentions ``R`` in ``Q1`` and ``S`` in ``Q2``.
    Equality mappings contribute both directions (they are pairs of
    inclusions and "automatically create cycles").
    """
    graph: Dict[str, Set[str]] = {}

    def add_edges(left_predicates: Iterable[str], right_predicates: Iterable[str]) -> None:
        for left in left_predicates:
            for right in right_predicates:
                graph.setdefault(left, set()).add(right)
                graph.setdefault(right, set())

    for mapping in pdms.peer_mappings():
        if isinstance(mapping, InclusionMapping):
            add_edges(mapping.left_predicates(), mapping.right_predicates())
        elif isinstance(mapping, EqualityMapping):
            add_edges(mapping.left.predicates(), mapping.right.predicates())
            add_edges(mapping.right.predicates(), mapping.left.predicates())
    return graph


def is_acyclic(graph: Dict[str, Set[str]]) -> bool:
    """Cycle test on a directed graph given as adjacency sets."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour = {node: WHITE for node in graph}

    def visit(node: str) -> bool:
        colour[node] = GREY
        for successor in graph.get(node, ()):
            if colour.get(successor, WHITE) == GREY:
                return False
            if colour.get(successor, WHITE) == WHITE and not visit(successor):
                return False
        colour[node] = BLACK
        return True

    return all(colour[node] != WHITE or visit(node) for node in list(graph))


def analyze_pdms(pdms: PDMS) -> ComplexityReport:
    """Classify the data complexity of query answering for ``pdms``."""
    reasons: List[str] = []

    inclusions = [m for m in pdms.peer_mappings() if isinstance(m, InclusionMapping)]
    equalities = [m for m in pdms.peer_mappings() if isinstance(m, EqualityMapping)]
    definitionals = [m for m in pdms.peer_mappings() if isinstance(m, DefinitionalMapping)]
    storage = list(pdms.storage_descriptions())

    inclusion_graph = build_inclusion_graph(pdms)
    acyclic = is_acyclic(inclusion_graph)
    if not acyclic and not equalities:
        reasons.append("cyclic inclusion peer mappings (Definition 3.1 graph has a cycle)")
        return ComplexityReport(
            complexity=ComplexityClass.UNDECIDABLE,
            theorem="Theorem 3.1(1)",
            tractable=False,
            algorithm_complete=False,
            reasons=reasons,
            inclusion_graph_acyclic=False,
        )

    # From here on the inclusion-only part is acyclic (equalities are
    # analysed separately because they always create cycles by design).
    projecting_equalities = [m for m in equalities if m.has_projection()]
    projecting_equality_storage = [d for d in storage if d.exact and d.has_projection()]

    definitional_heads = {m.head_predicate for m in definitionals}
    heads_on_rhs: List[str] = []
    for mapping in inclusions:
        heads_on_rhs.extend(
            head for head in definitional_heads if head in mapping.right_predicates()
        )
    for mapping in equalities:
        heads_on_rhs.extend(
            head
            for head in definitional_heads
            if head in mapping.right.predicates() or head in mapping.left.predicates()
        )
    for description in storage:
        heads_on_rhs.extend(
            head for head in definitional_heads if head in description.query.predicates()
        )

    comparison_in_peer_mappings = any(
        m.has_comparisons() for m in inclusions + equalities
    )
    comparison_in_definitional = any(m.has_comparisons() for m in definitionals)
    comparison_in_storage = any(d.has_comparisons() for d in storage)

    if not acyclic:
        reasons.append(
            "equality peer mappings introduce cycles; analysed under Theorem 3.2"
        )

    if projecting_equalities:
        reasons.append(
            f"{len(projecting_equalities)} equality peer mapping(s) use projection"
        )
        return ComplexityReport(
            complexity=ComplexityClass.UNDECIDABLE,
            theorem="Theorem 3.1(1) (general equalities with projection)",
            tractable=False,
            algorithm_complete=False,
            reasons=reasons,
            inclusion_graph_acyclic=acyclic,
        )

    if projecting_equality_storage:
        reasons.append(
            f"{len(projecting_equality_storage)} equality storage description(s) "
            "contain projections"
        )
        return ComplexityReport(
            complexity=ComplexityClass.CONP_COMPLETE,
            theorem="Theorem 3.2(2)",
            tractable=False,
            algorithm_complete=False,
            reasons=reasons,
            inclusion_graph_acyclic=acyclic,
        )

    if heads_on_rhs:
        unique = sorted(set(heads_on_rhs))
        reasons.append(
            "definitional head predicate(s) appear on the right-hand side of other "
            f"descriptions: {', '.join(unique)}"
        )
        return ComplexityReport(
            complexity=ComplexityClass.CONP_COMPLETE,
            theorem="Theorem 3.2(1) violated (definitional-head restriction)",
            tractable=False,
            algorithm_complete=False,
            reasons=reasons,
            inclusion_graph_acyclic=acyclic,
        )

    if comparison_in_peer_mappings:
        reasons.append("comparison predicates appear in non-definitional peer mappings")
        return ComplexityReport(
            complexity=ComplexityClass.CONP_COMPLETE,
            theorem="Theorem 3.3(2)",
            tractable=False,
            algorithm_complete=False,
            reasons=reasons,
            inclusion_graph_acyclic=acyclic,
        )

    if comparison_in_storage or comparison_in_definitional:
        reasons.append(
            "comparison predicates confined to storage descriptions / definitional bodies"
        )
        theorem = "Theorem 3.3(1)"
    elif equalities:
        reasons.append("projection-free equalities only")
        theorem = "Theorem 3.2(1)"
    else:
        reasons.append("acyclic inclusion-only PDMS")
        theorem = "Theorem 3.1(2)"

    return ComplexityReport(
        complexity=ComplexityClass.POLYNOMIAL,
        theorem=theorem,
        tractable=True,
        algorithm_complete=True,
        reasons=reasons,
        inclusion_graph_acyclic=acyclic,
    )
