"""Rule-goal tree (DAG) data structures for the reformulation algorithm.

Section 4 of the paper builds a tree with alternating *goal nodes*
(labelled with atoms of peer or stored relations) and *rule nodes*
(labelled with the peer description used to expand the parent goal).  Rule
nodes produced by *inclusion expansions* additionally carry an ``unc``
label: the set of siblings of their father goal node (always including the
father itself) that the MCD behind the expansion covers.  Every node also
carries a *constraint label*: the conjunction of comparison predicates
known to hold over the variables of its label.

The tree is the unit the paper measures: Figure 3 plots the number of
nodes against the PDMS diameter, and Figure 4 the time to extract the
first/10th/all rewritings from it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..datalog.atoms import Atom
from ..datalog.constraints import ConstraintSet


class GoalNode:
    """A goal node, labelled with an atom over a peer or stored relation.

    Attributes
    ----------
    label:
        The atom ``p(Y̅)``.
    constraint:
        Constraint label ``c(n)``.
    parent:
        The rule node this goal is a child of (``None`` for the root).
    children:
        Rule nodes expanding this goal (alternative ways to satisfy it).
    blocked:
        Origin names of descriptions used on the path from the root to
        this node (the termination rule forbids reusing them here).
    is_stored:
        Whether the label's predicate is a stored relation (then this node
        is a leaf that appears directly in rewritings).
    """

    __slots__ = (
        "id",
        "label",
        "constraint",
        "parent",
        "children",
        "blocked",
        "is_stored",
        "expanded",
        "depth",
        "external",
    )

    _ids = itertools.count()

    def __init__(
        self,
        label: Atom,
        constraint: ConstraintSet = ConstraintSet(),
        parent: Optional["RuleNode"] = None,
        blocked: frozenset = frozenset(),
        is_stored: bool = False,
        depth: int = 0,
        external: frozenset = frozenset(),
    ):
        self.id = next(GoalNode._ids)
        self.label = label
        self.constraint = constraint
        self.parent = parent
        self.children: List[RuleNode] = []
        self.blocked = blocked
        self.is_stored = is_stored
        self.expanded = False
        self.depth = depth
        # Variables of ``label`` that may also occur outside this node's
        # replacement subtree in an assembled rewriting.  Inclusion
        # expansions must export exactly these (MiniCon property C1); the
        # set is propagated downward as the tree is built.
        self.external = external

    def add_child(self, rule_node: "RuleNode") -> None:
        """Attach an expansion (rule node) to this goal."""
        self.children.append(rule_node)

    def siblings(self) -> List["GoalNode"]:
        """Goal children of this node's parent rule node (including self)."""
        if self.parent is None:
            return [self]
        return list(self.parent.children)

    def __repr__(self) -> str:
        marker = "$" if self.is_stored else ""
        return f"GoalNode#{self.id}({marker}{self.label})"


class RuleNode:
    """A rule node, labelled with the peer description used to expand its parent.

    ``kind`` distinguishes the three expansion flavours: the root query
    rule, definitional expansions, and inclusion expansions.  For
    inclusion expansions, ``covers`` is the ``unc`` label (goal-node
    siblings of the parent covered by the MCD, parent included).
    """

    __slots__ = (
        "id",
        "kind",
        "description",
        "origin",
        "parent",
        "children",
        "covers",
        "constraint",
    )

    _ids = itertools.count()

    KIND_QUERY = "query"
    KIND_DEFINITIONAL = "definitional"
    KIND_INCLUSION = "inclusion"

    def __init__(
        self,
        kind: str,
        description: object,
        origin: str,
        parent: GoalNode,
        constraint: ConstraintSet = ConstraintSet(),
        covers: Optional[frozenset] = None,
    ):
        self.id = next(RuleNode._ids)
        self.kind = kind
        self.description = description
        self.origin = origin
        self.parent = parent
        self.children: List[GoalNode] = []
        self.covers: frozenset = covers if covers is not None else frozenset()
        self.constraint = constraint

    def add_child(self, goal_node: GoalNode) -> None:
        """Attach a child goal node."""
        self.children.append(goal_node)

    def __repr__(self) -> str:
        return f"RuleNode#{self.id}({self.kind}:{self.origin})"


@dataclass
class TreeStatistics:
    """Size statistics of a rule-goal tree (what Figure 3 plots)."""

    goal_nodes: int = 0
    rule_nodes: int = 0
    stored_leaves: int = 0
    dead_leaves: int = 0
    max_depth: int = 0
    pruned_unsatisfiable: int = 0
    pruned_dead_end: int = 0
    memoization_hits: int = 0

    @property
    def total_nodes(self) -> int:
        """Goal nodes plus rule nodes — the paper's "#nodes in rule/goal tree"."""
        return self.goal_nodes + self.rule_nodes


class RuleGoalTree:
    """The full rule-goal tree built for one query reformulation."""

    def __init__(self, root: GoalNode):
        self.root = root
        self.statistics = TreeStatistics()

    # -- traversal ---------------------------------------------------------------

    def goal_nodes(self) -> Iterator[GoalNode]:
        """Yield every goal node (pre-order)."""
        stack: List[GoalNode] = [self.root]
        while stack:
            goal = stack.pop()
            yield goal
            for rule in goal.children:
                stack.extend(rule.children)

    def rule_nodes(self) -> Iterator[RuleNode]:
        """Yield every rule node (pre-order)."""
        for goal in self.goal_nodes():
            yield from goal.children

    def leaves(self) -> Iterator[GoalNode]:
        """Yield goal nodes with no expansions."""
        for goal in self.goal_nodes():
            if not goal.children:
                yield goal

    def count_nodes(self) -> TreeStatistics:
        """Recount node statistics from the tree structure."""
        stats = TreeStatistics(
            pruned_unsatisfiable=self.statistics.pruned_unsatisfiable,
            pruned_dead_end=self.statistics.pruned_dead_end,
            memoization_hits=self.statistics.memoization_hits,
        )
        for goal in self.goal_nodes():
            stats.goal_nodes += 1
            stats.max_depth = max(stats.max_depth, goal.depth)
            if goal.is_stored:
                stats.stored_leaves += 1
            elif not goal.children:
                stats.dead_leaves += 1
            stats.rule_nodes += len(goal.children)
        self.statistics = stats
        return stats

    # -- display -----------------------------------------------------------------

    def pretty(self, max_depth: Optional[int] = None) -> str:
        """An indented rendering of the tree (for debugging and examples)."""
        lines: List[str] = []

        def visit_goal(goal: GoalNode, indent: int) -> None:
            if max_depth is not None and indent > max_depth:
                return
            marker = "$" if goal.is_stored else ""
            constraint = f"  [{goal.constraint}]" if len(goal.constraint) else ""
            lines.append("  " * indent + f"{marker}{goal.label}{constraint}")
            for rule in goal.children:
                covers = ""
                if rule.kind == RuleNode.KIND_INCLUSION and rule.covers:
                    covered = ",".join(str(c.label) for c in rule.covers)
                    covers = f"  covers({covered})"
                lines.append("  " * (indent + 1) + f"<{rule.kind}:{rule.origin}>{covers}")
                for child in rule.children:
                    visit_goal(child, indent + 2)

        visit_goal(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:
        stats = self.statistics
        return (
            f"RuleGoalTree({stats.total_nodes} nodes: "
            f"{stats.goal_nodes} goal, {stats.rule_nodes} rule)"
        )
