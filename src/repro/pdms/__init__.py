"""The PDMS core: the paper's primary contribution.

Peers and their schemas, the PPL mapping language (storage descriptions,
inclusion/equality/definitional peer mappings), the normalised catalogue,
complexity analysis per Theorems 3.1–3.3, the rule-goal-tree reformulation
algorithm of Section 4 with its optimizations, execution over stored
relations, and the certain-answer semantics of Section 2.2.
"""

from .analysis import ComplexityClass, ComplexityReport, analyze_pdms, build_inclusion_graph
from .execution import (
    PeerFactSource,
    PerRewritingEngine,
    SharedPlanEngine,
    answer_query,
    answer_query_batch,
    combine_peer_instances,
    default_engine,
    evaluate_reformulation,
    federate_if_per_peer,
    get_engine,
    register_engine,
    registered_engines,
    stream_answers,
    validate_engine,
)
from .materialization import (
    AdmissionPolicy,
    FragmentCache,
    FragmentCacheStats,
    data_version_token,
    estimate_result_bytes,
    fragment_cache_from_env,
    int_from_env,
)
from .planning import (
    PlanStatistics,
    UnionPlan,
    compile_reformulation,
    ensure_plan,
    evaluate_plan,
    stream_plan_answers,
)
from .mappings import (
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    StorageDescription,
    lav_style,
    replication,
)
from .optimizations import DEFAULT_CONFIG, ExpansionOrder, ReformulationConfig
from .peer import Peer, StoredRelation, qualified_name
from .reformulation import (
    CanonicalQuery,
    ReformulationProvenance,
    ReformulationResult,
    canonicalize_query,
    compute_productive_predicates,
    reformulate,
)
from .rule_goal_tree import GoalNode, RuleGoalTree, RuleNode, TreeStatistics
from .semantics import build_canonical_instance, certain_answers, is_consistent
from .service import QueryService, ServiceStats
from .system import (
    PDMS,
    CatalogueChange,
    NormalizedCatalogue,
    NormalizedInclusion,
    NormalizedRule,
)

__all__ = [
    "AdmissionPolicy",
    "CanonicalQuery",
    "CatalogueChange",
    "ComplexityClass",
    "ComplexityReport",
    "DEFAULT_CONFIG",
    "DefinitionalMapping",
    "EqualityMapping",
    "ExpansionOrder",
    "FragmentCache",
    "FragmentCacheStats",
    "GoalNode",
    "InclusionMapping",
    "NormalizedCatalogue",
    "NormalizedInclusion",
    "NormalizedRule",
    "PDMS",
    "Peer",
    "PeerFactSource",
    "PerRewritingEngine",
    "PlanStatistics",
    "QueryService",
    "ReformulationConfig",
    "ReformulationProvenance",
    "ReformulationResult",
    "RuleGoalTree",
    "RuleNode",
    "ServiceStats",
    "SharedPlanEngine",
    "StorageDescription",
    "StoredRelation",
    "TreeStatistics",
    "UnionPlan",
    "analyze_pdms",
    "answer_query",
    "answer_query_batch",
    "build_canonical_instance",
    "build_inclusion_graph",
    "canonicalize_query",
    "certain_answers",
    "combine_peer_instances",
    "compile_reformulation",
    "compute_productive_predicates",
    "data_version_token",
    "default_engine",
    "ensure_plan",
    "estimate_result_bytes",
    "evaluate_plan",
    "evaluate_reformulation",
    "federate_if_per_peer",
    "fragment_cache_from_env",
    "get_engine",
    "int_from_env",
    "is_consistent",
    "lav_style",
    "qualified_name",
    "reformulate",
    "register_engine",
    "registered_engines",
    "replication",
    "stream_answers",
    "stream_plan_answers",
    "validate_engine",
]
