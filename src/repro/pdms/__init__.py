"""The PDMS core: the paper's primary contribution.

Peers and their schemas, the PPL mapping language (storage descriptions,
inclusion/equality/definitional peer mappings), the normalised catalogue,
complexity analysis per Theorems 3.1–3.3, the rule-goal-tree reformulation
algorithm of Section 4 with its optimizations, execution over stored
relations, and the certain-answer semantics of Section 2.2.
"""

from .analysis import ComplexityClass, ComplexityReport, analyze_pdms, build_inclusion_graph
from .execution import (
    answer_query,
    answer_query_batch,
    combine_peer_instances,
    evaluate_reformulation,
    stream_answers,
)
from .mappings import (
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    StorageDescription,
    lav_style,
    replication,
)
from .optimizations import DEFAULT_CONFIG, ExpansionOrder, ReformulationConfig
from .peer import Peer, StoredRelation, qualified_name
from .reformulation import (
    CanonicalQuery,
    ReformulationProvenance,
    ReformulationResult,
    canonicalize_query,
    compute_productive_predicates,
    reformulate,
)
from .rule_goal_tree import GoalNode, RuleGoalTree, RuleNode, TreeStatistics
from .semantics import build_canonical_instance, certain_answers, is_consistent
from .service import QueryService, ServiceStats
from .system import (
    PDMS,
    CatalogueChange,
    NormalizedCatalogue,
    NormalizedInclusion,
    NormalizedRule,
)

__all__ = [
    "CanonicalQuery",
    "CatalogueChange",
    "ComplexityClass",
    "ComplexityReport",
    "DEFAULT_CONFIG",
    "DefinitionalMapping",
    "EqualityMapping",
    "ExpansionOrder",
    "GoalNode",
    "InclusionMapping",
    "NormalizedCatalogue",
    "NormalizedInclusion",
    "NormalizedRule",
    "PDMS",
    "Peer",
    "QueryService",
    "ReformulationConfig",
    "ReformulationProvenance",
    "ReformulationResult",
    "RuleGoalTree",
    "RuleNode",
    "ServiceStats",
    "StorageDescription",
    "StoredRelation",
    "TreeStatistics",
    "analyze_pdms",
    "answer_query",
    "answer_query_batch",
    "build_canonical_instance",
    "build_inclusion_graph",
    "canonicalize_query",
    "certain_answers",
    "combine_peer_instances",
    "compute_productive_predicates",
    "evaluate_reformulation",
    "is_consistent",
    "lav_style",
    "qualified_name",
    "reformulate",
    "replication",
    "stream_answers",
]
