"""The PDMS core: the paper's primary contribution.

Peers and their schemas, the PPL mapping language (storage descriptions,
inclusion/equality/definitional peer mappings), the normalised catalogue,
complexity analysis per Theorems 3.1–3.3, the rule-goal-tree reformulation
algorithm of Section 4 with its optimizations, execution over stored
relations, and the certain-answer semantics of Section 2.2.
"""

from .analysis import ComplexityClass, ComplexityReport, analyze_pdms, build_inclusion_graph
from .execution import answer_query, combine_peer_instances, evaluate_reformulation
from .mappings import (
    DefinitionalMapping,
    EqualityMapping,
    InclusionMapping,
    StorageDescription,
    lav_style,
    replication,
)
from .optimizations import DEFAULT_CONFIG, ExpansionOrder, ReformulationConfig
from .peer import Peer, StoredRelation, qualified_name
from .reformulation import (
    ReformulationResult,
    compute_productive_predicates,
    reformulate,
)
from .rule_goal_tree import GoalNode, RuleGoalTree, RuleNode, TreeStatistics
from .semantics import build_canonical_instance, certain_answers, is_consistent
from .system import PDMS, NormalizedCatalogue, NormalizedInclusion, NormalizedRule

__all__ = [
    "ComplexityClass",
    "ComplexityReport",
    "DEFAULT_CONFIG",
    "DefinitionalMapping",
    "EqualityMapping",
    "ExpansionOrder",
    "GoalNode",
    "InclusionMapping",
    "NormalizedCatalogue",
    "NormalizedInclusion",
    "NormalizedRule",
    "PDMS",
    "Peer",
    "ReformulationConfig",
    "ReformulationResult",
    "RuleGoalTree",
    "RuleNode",
    "StorageDescription",
    "StoredRelation",
    "TreeStatistics",
    "analyze_pdms",
    "answer_query",
    "build_canonical_instance",
    "build_inclusion_graph",
    "certain_answers",
    "combine_peer_instances",
    "compute_productive_predicates",
    "evaluate_reformulation",
    "is_consistent",
    "lav_style",
    "qualified_name",
    "reformulate",
    "replication",
]
