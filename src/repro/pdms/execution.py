"""Execution of reformulated queries over the peers' stored relations.

The paper leaves execution to an external (adaptive) query processor; for
the reproduction we simply evaluate the union of conjunctive rewritings
over an in-memory :class:`repro.database.instance.Instance` (or any fact
source) holding the stored relations of all peers, using set semantics.
A convenience helper assembles that combined instance from per-peer
instances.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set, Tuple, Union

from ..database.instance import Instance
from ..database.planner import evaluate_query_via_plan
from ..datalog.evaluation import FactsLike, evaluate_query
from ..datalog.queries import ConjunctiveQuery
from ..errors import EvaluationError
from .optimizations import ReformulationConfig
from .reformulation import ReformulationResult, reformulate
from .system import PDMS

Row = Tuple[object, ...]

#: Available execution engines for reformulated queries.
ENGINES = ("backtracking", "plan")


def combine_peer_instances(instances: Mapping[str, Instance]) -> Instance:
    """Merge per-peer instances of stored relations into one instance.

    Stored-relation names are globally unique in a well-formed PDMS, so
    merging is a plain union; a clash with different arities raises.
    """
    combined = Instance()
    for peer_name, instance in instances.items():
        for relation in instance.relations():
            for row in instance.get_tuples(relation):
                combined.add(relation, row)
    return combined


def evaluate_reformulation(
    result: ReformulationResult, data: FactsLike, engine: str = "backtracking"
) -> Set[Row]:
    """Evaluate every rewriting of ``result`` over ``data`` (set semantics).

    Streaming evaluation: rewritings are evaluated as they are produced,
    so answers from the first rewritings are found before the enumeration
    completes.

    ``engine`` selects the evaluation path: ``"backtracking"`` uses the
    direct conjunctive-query evaluator, ``"plan"`` compiles each rewriting
    to a relational-algebra plan first (the route a database system would
    take); both return the same answers.
    """
    if engine not in ENGINES:
        raise EvaluationError(f"unknown execution engine {engine!r}; choose from {ENGINES}")
    evaluate = evaluate_query if engine == "backtracking" else evaluate_query_via_plan
    answers: Set[Row] = set()
    for rewriting in result.rewritings():
        answers |= evaluate(rewriting, data)
    return answers


def answer_query(
    pdms: PDMS,
    query: ConjunctiveQuery,
    data: Union[FactsLike, Mapping[str, Instance]],
    config: Optional[ReformulationConfig] = None,
    engine: str = "backtracking",
) -> Set[Row]:
    """Reformulate ``query`` and evaluate it over stored-relation data.

    ``data`` is either a single fact source over stored relations, or a
    mapping from peer name to that peer's :class:`Instance` (in which case
    the instances are combined first).  ``engine`` is passed through to
    :func:`evaluate_reformulation`.
    """
    if isinstance(data, Mapping) and data and all(
        isinstance(value, Instance) for value in data.values()
    ):
        data = combine_peer_instances(data)  # type: ignore[arg-type]
    result = reformulate(pdms, query, config=config)
    return evaluate_reformulation(result, data, engine=engine)
