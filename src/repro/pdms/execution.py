"""Execution of reformulated queries over the peers' stored relations.

The paper leaves execution to an external (adaptive) query processor; this
module provides five interchangeable engines behind a small registry:

* ``"backtracking"`` — each rewriting through the direct indexed-join
  conjunctive-query evaluator;
* ``"plan"`` — each rewriting compiled to a relational-algebra plan first
  (the route a classical database system would take);
* ``"shared"`` — the whole union of rewritings compiled into one shared
  union-plan DAG (:mod:`repro.pdms.planning`) with hash-consed common
  sub-conjunctions evaluated once and an optional worker pool; fragments
  run on the :mod:`repro.database.columnar` batch kernels unless
  ``REPRO_COLUMNAR=0``;
* ``"columnar"`` — the same DAG evaluation with the batch kernels pinned
  on regardless of ``REPRO_COLUMNAR`` (the name the CI matrix and the
  kernel benchmarks select);
* ``"distributed"`` — the shared union plan with every stored-relation
  scan scatter-gathered over a peer-boundary transport
  (:mod:`repro.pdms.distributed`), degrading to best-effort sound-subset
  answers when peers fail.  Registered on import of
  :mod:`repro.pdms.distributed.engine` (the ``repro.pdms`` package does
  this), not here, to keep the dependency arrow pointing one way.

Execution is *streaming*: rewritings are pulled from the reformulation
generator one at a time and evaluated as they arrive, so the first answers
surface before Step 3 finishes enumerating (the paper's Figure 4 measures
exactly this time-to-first-answer shape).  ``limit`` cuts the enumeration
short once enough distinct answers are known.

Per-peer data is served **federated**: a :class:`PeerFactSource` routes
index probes to the owning peer's live
:class:`~repro.database.instance.Instance` instead of eagerly copying
every row into a combined instance (:func:`combine_peer_instances` remains
available for callers that genuinely want a merged copy).
"""

from __future__ import annotations

import os
import threading
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..database.feedback import QErrorLog
from ..database.instance import Instance, relation_creation_clock
from ..database.planner import evaluate_query_via_plan
from ..datalog.evaluation import FactsLike, evaluate_query
from ..datalog.indexing import Pattern
from ..datalog.queries import ConjunctiveQuery
from ..errors import EvaluationError, MappingError
from .materialization import FragmentCache, data_version_token
from .optimizations import ReformulationConfig
from .planning import (
    UnionPlan,
    ensure_plan,
    shared_workers_from_env,
    stream_plan_answers,
)
from .reformulation import (
    ReformulationResult,
    canonicalize_query,
    reformulate,
)
from .system import PDMS

Row = Tuple[object, ...]


# ---------------------------------------------------------------------------
# Engine registry
# ---------------------------------------------------------------------------

class ExecutionEngine(Protocol):
    """An execution strategy for a reformulated union of rewritings.

    ``stream`` yields *distinct* answer rows incrementally; consuming only
    a prefix must not force the full rewriting enumeration.  Engines that
    consume compiled union plans set ``uses_plans`` so callers holding a
    plan cache (the service layer) can pass one in.  ``cache`` (optional)
    is a cross-call :class:`~repro.pdms.materialization.FragmentCache`;
    every engine routes its repeated work through it at whatever
    granularity fits — shared fragment tables for the union-plan engine,
    whole-rewriting answer sets for the per-rewriting engines — and
    ignores it when the data source exposes no data versions.
    ``feedback`` (optional) is a
    :class:`~repro.database.feedback.QErrorLog` recording one
    ``(estimated, actual)`` cardinality observation per unit of work the
    engine freshly evaluates (fragments for plan engines, whole
    rewritings for per-rewriting engines).
    """

    name: str

    def stream(
        self,
        result: ReformulationResult,
        data: FactsLike,
        plan: Optional[UnionPlan] = None,
        cache: Optional[FragmentCache] = None,
        feedback: Optional[QErrorLog] = None,
    ) -> Iterator[Row]:  # pragma: no cover - protocol
        ...


class PerRewritingEngine:
    """Wraps a per-rewriting evaluator into the engine interface.

    With a fragment cache, each rewriting's full answer set is cached
    under its canonical query signature plus the data-version token of
    the relations it reads — the whole rewriting is treated as one
    coarse fragment, so repeated traffic over unchanged data skips the
    evaluator entirely while a write to any read relation recomputes.
    """

    uses_plans = False

    def __init__(self, name: str, evaluate):
        self.name = name
        self._evaluate = evaluate

    def _rows(
        self,
        rewriting: ConjunctiveQuery,
        data: FactsLike,
        cache: Optional[FragmentCache],
        feedback: Optional[QErrorLog] = None,
    ):
        relations = {atom.predicate for atom in rewriting.relational_body()}
        key = "rewriting::" + canonicalize_query(rewriting).signature

        def evaluate():
            rows = frozenset(self._evaluate(rewriting, data))
            if feedback is not None:
                # Whole-rewriting granularity: no per-fragment estimate
                # exists on this path, so the observation carries the true
                # cardinality only (feeding corrections, not q-error).
                feedback.record(
                    key,
                    relations,
                    data_version_token(data, relations),
                    None,
                    len(rows),
                )
            return rows

        if cache is None:
            return evaluate()
        token = data_version_token(data, relations)
        if token is None:
            return evaluate()
        return cache.get_or_compute(key, token, relations, evaluate)

    def stream(
        self,
        result: ReformulationResult,
        data: FactsLike,
        plan: Optional[UnionPlan] = None,
        cache: Optional[FragmentCache] = None,
        feedback: Optional[QErrorLog] = None,
    ) -> Iterator[Row]:
        seen: Set[Row] = set()
        for rewriting in result.rewritings():
            for row in self._rows(rewriting, data, cache, feedback):
                if row not in seen:
                    seen.add(row)
                    yield row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerRewritingEngine({self.name!r})"


class SharedPlanEngine:
    """Evaluates the whole union through one shared union-plan DAG.

    Common sub-conjunctions across rewritings are computed once per call;
    ``max_workers`` (or ``REPRO_SHARED_WORKERS``) evaluates independent
    rewriting roots on a worker pool (thread or process, per
    ``REPRO_SHARED_EXECUTOR``).  ``columnar`` pins the fragment
    representation: ``True`` always runs the
    :mod:`repro.database.columnar` batch kernels, ``False`` always the
    row path, ``None`` (the stock ``"shared"`` engine) follows the
    ``REPRO_COLUMNAR`` knob — on by default, so ``"shared"`` uses the
    kernels under the hood unless explicitly disabled.
    """

    uses_plans = True

    def __init__(
        self,
        name: str = "shared",
        max_workers: Optional[int] = None,
        columnar: Optional[bool] = None,
    ):
        self.name = name
        self._max_workers = max_workers
        self._columnar = columnar

    def stream(
        self,
        result: ReformulationResult,
        data: FactsLike,
        plan: Optional[UnionPlan] = None,
        cache: Optional[FragmentCache] = None,
        feedback: Optional[QErrorLog] = None,
    ) -> Iterator[Row]:
        workers = (
            self._max_workers
            if self._max_workers is not None
            else shared_workers_from_env()
        )
        if plan is None:
            plan = ensure_plan(result, data)
        elif plan.result is not result:
            raise EvaluationError(
                "the supplied union plan was compiled for a different "
                "reformulation result"
            )
        return stream_plan_answers(
            plan,
            data,
            max_workers=workers,
            cache=cache,
            columnar=self._columnar,
            feedback=feedback,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedPlanEngine({self.name!r})"


_ENGINE_REGISTRY: Dict[str, ExecutionEngine] = {}

#: Names of the registered execution engines, in registration order.
#: Rebound by :func:`register_engine`; import the module (not the tuple)
#: if you need to observe late registrations.
ENGINES: Tuple[str, ...] = ()


def register_engine(engine: ExecutionEngine, replace: bool = False) -> ExecutionEngine:
    """Register an execution engine under ``engine.name``.

    Registering a taken name raises unless ``replace`` is set (deployments
    may swap in an instrumented or differently tuned engine).
    """
    global ENGINES
    name = engine.name
    if not name or not isinstance(name, str):
        raise EvaluationError(f"engine name must be a non-empty string, got {name!r}")
    if name in _ENGINE_REGISTRY and not replace:
        raise EvaluationError(
            f"execution engine {name!r} is already registered; "
            f"pass replace=True to override"
        )
    _ENGINE_REGISTRY[name] = engine
    ENGINES = tuple(_ENGINE_REGISTRY)
    return engine


def registered_engines() -> Tuple[str, ...]:
    """Names of all registered execution engines, in registration order."""
    return tuple(_ENGINE_REGISTRY)


def validate_engine(engine: str) -> str:
    """Return ``engine`` if it names a registered execution engine, else raise."""
    if engine not in _ENGINE_REGISTRY:
        raise EvaluationError(
            f"unknown execution engine {engine!r}; "
            f"registered engines: {', '.join(registered_engines())}"
        )
    return engine


def get_engine(engine: str) -> ExecutionEngine:
    """The registered engine object for ``engine`` (validates the name)."""
    return _ENGINE_REGISTRY[validate_engine(engine)]


def default_engine() -> str:
    """The engine used when callers don't pass one explicitly.

    Read from ``REPRO_DEFAULT_ENGINE`` so the whole test suite (and any
    deployment) can be pointed at any registered engine without code
    changes — the CI matrix runs tier-1 under all of them.  A
    misconfigured value fails fast, at the first call, with the same
    dynamically enumerated message :func:`validate_engine` produces.
    """
    engine = os.environ.get("REPRO_DEFAULT_ENGINE", "backtracking")
    try:
        return validate_engine(engine)
    except EvaluationError as exc:
        raise EvaluationError(f"REPRO_DEFAULT_ENGINE is misconfigured: {exc}") from None


# ---------------------------------------------------------------------------
# Stored-relation data: federated per-peer sources and combined instances
# ---------------------------------------------------------------------------

def _check_arity_clashes(instances: Mapping[str, Instance]) -> Dict[str, List[Instance]]:
    """Route stored relations to owners, raising on cross-peer arity clashes."""
    routes: Dict[str, List[Instance]] = {}
    first_seen: Dict[str, Tuple[str, int]] = {}
    for peer_name, instance in instances.items():
        for relation in instance.relations():
            arity = instance.arity(relation)
            if arity is None:
                continue
            earlier = first_seen.get(relation)
            if earlier is None:
                first_seen[relation] = (peer_name, arity)
            elif earlier[1] != arity:
                raise MappingError(
                    f"stored relation {relation!r} has arity {earlier[1]} at peer "
                    f"{earlier[0]!r} but arity {arity} at peer {peer_name!r}"
                )
            routes.setdefault(relation, []).append(instance)
    return routes


class PeerFactSource:
    """A federated, no-copy fact source over per-peer instances.

    Implements the :class:`~repro.datalog.indexing.IndexedFactSource`
    protocol by routing each probe to the *owning* peer's live
    :class:`~repro.database.instance.Instance` — including its maintained
    hash indexes — instead of eagerly merging every row into a combined
    copy the way :func:`combine_peer_instances` does.  Stored-relation
    names are globally unique in a well-formed PDMS; the constructor keeps
    the combined path's eager arity-clash check (a clash raises
    :class:`~repro.errors.MappingError` naming both peers).  In the rare
    case several peers expose the same relation compatibly, probes fan out
    to all owners (set semantics downstream absorbs duplicates).

    Liveness: rows added to an owned instance are visible immediately, and
    the relation-routing table refreshes itself whenever a new relation is
    created on any live instance — detected by comparing one cached
    reading of the process-wide
    :data:`~repro.database.instance.relation_creation_clock` (a single
    attribute access per probe, so the join engine's inner loop pays O(1)
    for change detection).  The view therefore never goes stale in either
    direction, and the arity-clash check re-runs on every refresh exactly
    as it would on a fresh construction.
    """

    __slots__ = (
        "_instances",
        "_routes",
        "_clock_stamp",
        "_version_stamp",
        "_lock",
        # Slot for the shared statistics catalog (see
        # repro.database.statistics.shared_statistics), so cost models over
        # one federated source reuse one version-validated catalog whose
        # lifetime equals the source's.
        "_repro_statistics",
        "__weakref__",
    )

    def __init__(self, instances: Mapping[str, Instance]):
        self._instances: Dict[str, Instance] = dict(instances)
        self._lock = threading.Lock()
        self._routes: Dict[str, Tuple[Instance, ...]] = {}
        self._clock_stamp = -1
        self._version_stamp = -1
        self._refresh()

    def _owned_versions(self) -> int:
        # Per-instance relations_version counters only grow, so the sum
        # changes iff one of *our* instances created a relation.
        return sum(
            instance.relations_version for instance in self._instances.values()
        )

    def _refresh(self) -> None:
        with self._lock:
            # Capture the clock *before* inspecting: a relation created
            # after the capture ticks the clock past it, so the next probe
            # refreshes again; one created before the capture is already
            # visible (version bumps and relation creation precede ticks).
            clock = relation_creation_clock.read()
            if clock == self._clock_stamp:
                return
            # The global clock also moves for unrelated instances; only
            # re-derive the routes when one of the owned instances did.
            versions = self._owned_versions()
            if versions != self._version_stamp:
                self._routes = {
                    relation: tuple(owners)
                    for relation, owners in _check_arity_clashes(
                        self._instances
                    ).items()
                }
                self._version_stamp = versions
            self._clock_stamp = clock

    def _route(self, relation: str) -> Tuple[Instance, ...]:
        if relation_creation_clock.read() != self._clock_stamp:
            self._refresh()
        return self._routes.get(relation, ())

    def relations(self) -> Tuple[str, ...]:
        """Stored relations currently reachable through this source."""
        if relation_creation_clock.read() != self._clock_stamp:
            self._refresh()
        return tuple(self._routes)

    def instances(self) -> Dict[str, Instance]:
        """A copy of the peer-name → live-instance mapping behind this view.

        The distributed runtime uses this to lift an in-process federated
        view onto a transport boundary (e.g. wrapping it in a
        :class:`~repro.pdms.distributed.transport.LoopbackTransport`)
        without re-plumbing the callers that built the view.
        """
        return dict(self._instances)

    def owner_count(self, relation: str) -> int:
        """How many peer instances serve ``relation`` (0 if unknown)."""
        return len(self._route(relation))

    def get_tuples(self, predicate: str) -> Iterable[Row]:
        owners = self._route(predicate)
        if not owners:
            return ()
        if len(owners) == 1:
            return owners[0].get_tuples(predicate)
        rows: List[Row] = []
        for owner in owners:
            rows.extend(owner.get_tuples(predicate))
        return rows

    def get_matching(self, predicate: str, pattern: Pattern) -> Iterable[Row]:
        owners = self._route(predicate)
        if not owners:
            return ()
        if len(owners) == 1:
            return owners[0].get_matching(predicate, pattern)
        rows = []
        for owner in owners:
            rows.extend(owner.get_matching(predicate, pattern))
        return rows

    def cardinality(self, relation: str) -> int:
        """Total row count across owners (feeds the planner's cost model)."""
        return sum(owner.cardinality(relation) for owner in self._route(relation))

    def data_version(self, relation: str) -> Tuple[Tuple[int, int], ...]:
        """The federated data-version token of ``relation``.

        A sorted tuple of the owning instances' per-relation tokens — it
        changes whenever any owner's rows change *and* whenever the owner
        set itself changes (a peer joining or leaving swaps instances, and
        instance ids are process-unique), so version-keyed caches see peer
        churn as naturally as data writes.  Unknown relations yield the
        empty tuple.
        """
        return tuple(
            sorted(owner.data_version(relation) for owner in self._route(relation))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PeerFactSource({len(self._routes)} relations)"


def combine_peer_instances(instances: Mapping[str, Instance]) -> Instance:
    """Merge per-peer instances of stored relations into one instance.

    Stored-relation names are globally unique in a well-formed PDMS, so
    merging is a plain union; a clash with different arities raises a
    :class:`MappingError` naming both peers involved.  Query answering no
    longer needs this copy — :class:`PeerFactSource` federates probes to
    the live per-peer instances — but it remains the right tool when a
    materialised merged instance is wanted (e.g. the chase oracle).
    """
    combined = Instance()
    for relation, owners in _check_arity_clashes(instances).items():
        for owner in owners:
            for row in owner.get_tuples(relation):
                combined.add(relation, row)
    return combined


def is_per_peer_data(data: Union[FactsLike, Mapping[str, Instance]]) -> bool:
    """Is ``data`` a (non-empty) mapping from peer name to :class:`Instance`?

    The single convention check shared by every entry point that accepts
    either a flat fact source or per-peer instances.
    """
    return (
        isinstance(data, Mapping)
        and bool(data)
        and all(isinstance(value, Instance) for value in data.values())
    )


def federate_if_per_peer(
    data: Union[FactsLike, Mapping[str, Instance]]
) -> FactsLike:
    """Wrap per-peer instances in a no-copy federated source; pass others through."""
    if is_per_peer_data(data):
        return PeerFactSource(data)  # type: ignore[arg-type]
    return data  # type: ignore[return-value]


def combine_if_per_peer(
    data: Union[FactsLike, Mapping[str, Instance]]
) -> FactsLike:
    """Collapse per-peer instances into one *copied* instance.

    Kept for callers that want a materialised merge; the query-answering
    entry points use :func:`federate_if_per_peer` instead.
    """
    if is_per_peer_data(data):
        return combine_peer_instances(data)  # type: ignore[arg-type]
    return data  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def stream_answers(
    result: ReformulationResult,
    data: Union[FactsLike, Mapping[str, Instance]],
    engine: Optional[str] = None,
    plan: Optional[UnionPlan] = None,
    cache: Optional[FragmentCache] = None,
    feedback: Optional[QErrorLog] = None,
) -> Iterator[Row]:
    """Yield distinct answer rows as the rewriting enumeration progresses.

    Each conjunctive rewriting is evaluated as soon as Step 3 produces it;
    rows already seen (set semantics) are suppressed.  Consuming only a
    prefix of this iterator therefore never forces the full rewriting
    enumeration — the first-k path of the service layer rides on this.

    ``plan`` (optional) hands a cached compiled union plan to engines that
    consume one; other engines ignore it.  ``cache`` (optional) is a
    cross-call :class:`~repro.pdms.materialization.FragmentCache` every
    engine routes repeated work through.  ``feedback`` (optional) is a
    :class:`~repro.database.feedback.QErrorLog` measuring the engine's
    freshly evaluated work.  A bad ``engine`` name raises here, at call
    time, not on first iteration.
    """
    impl = get_engine(engine if engine is not None else default_engine())
    return impl.stream(
        result, federate_if_per_peer(data), plan=plan, cache=cache, feedback=feedback
    )


def evaluate_reformulation(
    result: ReformulationResult,
    data: Union[FactsLike, Mapping[str, Instance]],
    engine: Optional[str] = None,
    limit: Optional[int] = None,
    plan: Optional[UnionPlan] = None,
    cache: Optional[FragmentCache] = None,
    feedback: Optional[QErrorLog] = None,
) -> Set[Row]:
    """Evaluate the rewritings of ``result`` over ``data`` (set semantics).

    Streaming evaluation: rewritings are evaluated as they are produced,
    so answers from the first rewritings are found before the enumeration
    completes.  With ``limit``, evaluation stops as soon as ``limit``
    distinct answers are known and returns that subset.

    ``engine`` selects the evaluation path (see :func:`registered_engines`;
    ``"backtracking"``, ``"plan"``, and ``"shared"`` ship by default); all
    engines return the same answers.
    """
    engine = validate_engine(engine if engine is not None else default_engine())
    if limit is not None and limit < 0:
        raise EvaluationError(f"limit must be non-negative, got {limit}")
    answers: Set[Row] = set()
    if limit == 0:
        return answers
    for row in stream_answers(
        result, data, engine=engine, plan=plan, cache=cache, feedback=feedback
    ):
        answers.add(row)
        if limit is not None and len(answers) >= limit:
            break
    return answers


def answer_query(
    pdms: PDMS,
    query: ConjunctiveQuery,
    data: Union[FactsLike, Mapping[str, Instance]],
    config: Optional[ReformulationConfig] = None,
    engine: Optional[str] = None,
    limit: Optional[int] = None,
    cache: Optional[FragmentCache] = None,
) -> Set[Row]:
    """Reformulate ``query`` and evaluate it over stored-relation data.

    ``data`` is either a single fact source over stored relations, or a
    mapping from peer name to that peer's :class:`Instance` (in which case
    probes are federated to the live per-peer instances — no copy).
    ``engine``, ``limit``, and ``cache`` are passed through to
    :func:`evaluate_reformulation`.
    """
    data = federate_if_per_peer(data)
    result = reformulate(pdms, query, config=config)
    return evaluate_reformulation(result, data, engine=engine, limit=limit, cache=cache)


def answer_query_batch(
    pdms: PDMS,
    queries: Sequence[ConjunctiveQuery],
    data: Union[FactsLike, Mapping[str, Instance]],
    config: Optional[ReformulationConfig] = None,
    engine: Optional[str] = None,
    limit: Optional[int] = None,
    cache: Optional[FragmentCache] = None,
) -> List[Set[Row]]:
    """Answer a mix of queries over one shared federated source.

    Per-peer data is wrapped exactly once for the whole batch, and the
    batch shares one cache of canonical query signatures: structurally
    isomorphic queries in the mix (identical up to variable renaming, body
    order, and head name) are reformulated once and re-evaluated from the
    memoized rewritings.  Returns the answer sets in query order.  For a
    cache that persists *across* batches, use
    :class:`repro.pdms.service.QueryService`, which layers provenance
    invalidation on top.
    """
    source = federate_if_per_peer(data)
    results: Dict[str, ReformulationResult] = {}
    answers: List[Set[Row]] = []
    for query in queries:
        canonical = canonicalize_query(query)
        result = results.get(canonical.signature)
        if result is None:
            result = reformulate(pdms, canonical.query, config=config)
            results[canonical.signature] = result
        answers.append(
            evaluate_reformulation(
                result, source, engine=engine, limit=limit, cache=cache
            )
        )
    return answers


# ---------------------------------------------------------------------------
# Default engines
# ---------------------------------------------------------------------------

register_engine(PerRewritingEngine("backtracking", evaluate_query))
register_engine(PerRewritingEngine("plan", evaluate_query_via_plan))
register_engine(SharedPlanEngine("shared"))
# Same DAG evaluation as "shared", but the batch kernels are pinned on —
# the engine the CI matrix and the kernel benchmarks select by name,
# immune to REPRO_COLUMNAR.
register_engine(SharedPlanEngine("columnar", columnar=True))
