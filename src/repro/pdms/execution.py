"""Execution of reformulated queries over the peers' stored relations.

The paper leaves execution to an external (adaptive) query processor; for
the reproduction we simply evaluate the union of conjunctive rewritings
over an in-memory :class:`repro.database.instance.Instance` (or any fact
source) holding the stored relations of all peers, using set semantics.
A convenience helper assembles that combined instance from per-peer
instances.

Execution is *streaming*: rewritings are pulled from the reformulation
generator one at a time and evaluated as they arrive, so the first
answers surface before Step 3 finishes enumerating (the paper's Figure 4
measures exactly this time-to-first-answer shape).  ``limit`` cuts the
enumeration short once enough distinct answers are known, and
:func:`answer_query_batch` shares one combined instance across a query
mix.
"""

from __future__ import annotations

from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..database.instance import Instance
from ..database.planner import evaluate_query_via_plan
from ..datalog.evaluation import FactsLike, evaluate_query
from ..datalog.queries import ConjunctiveQuery
from ..errors import EvaluationError, MappingError
from .optimizations import ReformulationConfig
from .reformulation import ReformulationResult, reformulate
from .system import PDMS

Row = Tuple[object, ...]

#: Available execution engines for reformulated queries.
ENGINES = ("backtracking", "plan")


def default_engine() -> str:
    """The engine used when callers don't pass one explicitly.

    Read from ``REPRO_DEFAULT_ENGINE`` so the whole test suite (and any
    deployment) can be pointed at either engine without code changes —
    the CI matrix runs tier-1 under both.
    """
    import os

    engine = os.environ.get("REPRO_DEFAULT_ENGINE", "backtracking")
    if engine not in ENGINES:
        raise EvaluationError(
            f"REPRO_DEFAULT_ENGINE={engine!r} is not one of {ENGINES}"
        )
    return engine


def combine_peer_instances(instances: Mapping[str, Instance]) -> Instance:
    """Merge per-peer instances of stored relations into one instance.

    Stored-relation names are globally unique in a well-formed PDMS, so
    merging is a plain union; a clash with different arities raises a
    :class:`MappingError` naming both peers involved.
    """
    combined = Instance()
    first_seen: Dict[str, Tuple[str, int]] = {}
    for peer_name, instance in instances.items():
        for relation in instance.relations():
            arity = instance.arity(relation)
            if arity is None:
                continue
            earlier = first_seen.get(relation)
            if earlier is None:
                first_seen[relation] = (peer_name, arity)
            elif earlier[1] != arity:
                raise MappingError(
                    f"stored relation {relation!r} has arity {earlier[1]} at peer "
                    f"{earlier[0]!r} but arity {arity} at peer {peer_name!r}"
                )
            for row in instance.get_tuples(relation):
                combined.add(relation, row)
    return combined


def validate_engine(engine: str) -> str:
    """Return ``engine`` if it names a known execution engine, else raise."""
    if engine not in ENGINES:
        raise EvaluationError(f"unknown execution engine {engine!r}; choose from {ENGINES}")
    return engine


def _resolve_engine(engine: str):
    validate_engine(engine)
    return evaluate_query if engine == "backtracking" else evaluate_query_via_plan


def is_per_peer_data(data: Union[FactsLike, Mapping[str, Instance]]) -> bool:
    """Is ``data`` a (non-empty) mapping from peer name to :class:`Instance`?

    The single convention check shared by every entry point that accepts
    either a flat fact source or per-peer instances.
    """
    return (
        isinstance(data, Mapping)
        and bool(data)
        and all(isinstance(value, Instance) for value in data.values())
    )


def combine_if_per_peer(
    data: Union[FactsLike, Mapping[str, Instance]]
) -> FactsLike:
    """Collapse per-peer instances into one fact source; pass anything else through."""
    if is_per_peer_data(data):
        return combine_peer_instances(data)  # type: ignore[arg-type]
    return data  # type: ignore[return-value]


def stream_answers(
    result: ReformulationResult, data: FactsLike, engine: Optional[str] = None
) -> Iterator[Row]:
    """Yield distinct answer rows as the rewriting enumeration progresses.

    Each conjunctive rewriting is evaluated as soon as Step 3 produces it;
    rows already seen (set semantics) are suppressed.  Consuming only a
    prefix of this iterator therefore never forces the full rewriting
    enumeration — the first-k path of the service layer rides on this.

    A bad ``engine`` name raises here, at call time, not on first
    iteration.
    """
    evaluate = _resolve_engine(engine if engine is not None else default_engine())

    def generate() -> Iterator[Row]:
        seen: Set[Row] = set()
        for rewriting in result.rewritings():
            for row in evaluate(rewriting, data):
                if row not in seen:
                    seen.add(row)
                    yield row

    return generate()


def evaluate_reformulation(
    result: ReformulationResult,
    data: FactsLike,
    engine: Optional[str] = None,
    limit: Optional[int] = None,
) -> Set[Row]:
    """Evaluate the rewritings of ``result`` over ``data`` (set semantics).

    Streaming evaluation: rewritings are evaluated as they are produced,
    so answers from the first rewritings are found before the enumeration
    completes.  With ``limit``, evaluation stops as soon as ``limit``
    distinct answers are known and returns that subset.

    ``engine`` selects the evaluation path: ``"backtracking"`` uses the
    direct conjunctive-query evaluator, ``"plan"`` compiles each rewriting
    to a relational-algebra plan first (the route a database system would
    take); both return the same answers.
    """
    engine = validate_engine(engine if engine is not None else default_engine())
    if limit is not None and limit < 0:
        raise EvaluationError(f"limit must be non-negative, got {limit}")
    answers: Set[Row] = set()
    if limit == 0:
        return answers
    for row in stream_answers(result, data, engine=engine):
        answers.add(row)
        if limit is not None and len(answers) >= limit:
            break
    return answers


def answer_query(
    pdms: PDMS,
    query: ConjunctiveQuery,
    data: Union[FactsLike, Mapping[str, Instance]],
    config: Optional[ReformulationConfig] = None,
    engine: Optional[str] = None,
    limit: Optional[int] = None,
) -> Set[Row]:
    """Reformulate ``query`` and evaluate it over stored-relation data.

    ``data`` is either a single fact source over stored relations, or a
    mapping from peer name to that peer's :class:`Instance` (in which case
    the instances are combined first).  ``engine`` and ``limit`` are
    passed through to :func:`evaluate_reformulation`.
    """
    data = combine_if_per_peer(data)
    result = reformulate(pdms, query, config=config)
    return evaluate_reformulation(result, data, engine=engine, limit=limit)


def answer_query_batch(
    pdms: PDMS,
    queries: Sequence[ConjunctiveQuery],
    data: Union[FactsLike, Mapping[str, Instance]],
    config: Optional[ReformulationConfig] = None,
    engine: Optional[str] = None,
    limit: Optional[int] = None,
) -> List[Set[Row]]:
    """Answer a mix of queries over one shared combined instance.

    Per-peer data is merged exactly once for the whole batch (the
    per-query path re-merges on every call).  Returns the answer sets in
    query order.  For reformulation reuse across the batch, use
    :class:`repro.pdms.service.QueryService`, which layers a cache over
    this path.
    """
    data = combine_if_per_peer(data)
    return [
        answer_query(pdms, query, data, config=config, engine=engine, limit=limit)
        for query in queries
    ]
