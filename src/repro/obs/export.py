"""Trace exporters: the text explain-analyze renderer and JSONL helpers.

:func:`render_trace` turns one trace's span records (local
:meth:`~repro.obs.trace.Span.as_record` dicts plus adopted worker-side
records) into an indented tree with per-span durations, attributes, and
an inline flamegraph bar scaled to the root span::

    trace 3f2a… · query.answer · 12.4ms · 17 spans
    query.answer 12.4ms [engine=distributed] |####################|
    ├─ query.reformulate 1.2ms [cache=miss rewritings=4] |##      |
    ├─ plan.compile 0.8ms                                | #      |
    └─ plan.execute 9.9ms                                |  ######|
       └─ scatter.wave 4.1ms [wave=0 peers=3]
          └─ scan.unit 2.0ms [relation=r attempts=2]
             ├─ scan.attempt 1.1ms [peer=p0 kind=primary status=error]
             ├─ scan.attempt 0.9ms [peer=p1 kind=retry]
             └─ ~ rpc.serve.scan 0.7ms [peer=p1]

Worker-side spans (``remote: true``) carry a foreign monotonic epoch, so
they are marked ``~`` and get no timeline bar — their duration is exact,
their offset is not comparable.  Spans whose parent is missing from the
record set (evicted or never shipped) render under an ``(orphans)``
marker rather than being dropped.

The module doubles as a CLI over a ``REPRO_TRACE_SINK`` file::

    python -m repro.obs.export trace.jsonl            # render last trace
    python -m repro.obs.export trace.jsonl --list     # one line per trace
    python -m repro.obs.export trace.jsonl --trace ID
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["render_trace", "render_last", "load_sink", "main"]

_BAR_WIDTH = 20


def _format_duration(duration_us: float) -> str:
    if duration_us >= 1_000_000:
        return f"{duration_us / 1_000_000:.2f}s"
    if duration_us >= 1_000:
        return f"{duration_us / 1_000:.1f}ms"
    return f"{duration_us:.0f}us"


def _format_attrs(record: Mapping) -> str:
    attrs = record.get("attrs") or {}
    parts = [f"{key}={value}" for key, value in attrs.items() if key != "error"]
    status = record.get("status", "ok")
    if status != "ok":
        parts.append(f"status={status}")
        error = attrs.get("error")
        if error:
            parts.append(f"error={error}")
    return f" [{' '.join(parts)}]" if parts else ""


def _bar(record: Mapping, root: Mapping) -> str:
    """Timeline bar relative to the root span; blank for foreign epochs."""
    if record.get("remote"):
        return " " * (_BAR_WIDTH + 2)
    total = root.get("duration_us") or 0
    if total <= 0:
        return " " * (_BAR_WIDTH + 2)
    offset_us = (record.get("start_ns", 0) - root.get("start_ns", 0)) / 1000.0
    offset = max(0.0, min(1.0, offset_us / total))
    width = min(1.0 - offset, (record.get("duration_us") or 0) / total)
    lead = int(offset * _BAR_WIDTH)
    fill = max(1, int(width * _BAR_WIDTH)) if width > 0 else 1
    fill = min(fill, _BAR_WIDTH - lead)
    return "|" + " " * lead + "#" * fill + " " * (_BAR_WIDTH - lead - fill) + "|"


def _children_index(
    spans: Sequence[Mapping],
) -> Tuple[List[Mapping], Dict[str, List[Mapping]], List[Mapping]]:
    """Split spans into (roots, children-by-parent, orphans)."""
    by_id = {record.get("span_id"): record for record in spans}
    roots: List[Mapping] = []
    children: Dict[str, List[Mapping]] = {}
    orphans: List[Mapping] = []
    for record in spans:
        parent = record.get("parent_id")
        if parent is None:
            roots.append(record)
        elif parent in by_id:
            children.setdefault(parent, []).append(record)
        else:
            orphans.append(record)
    # Stable order: local spans by start time, then adopted remote spans
    # (their foreign start_ns is not comparable with local clocks).
    def order(bucket: List[Mapping]) -> List[Mapping]:
        return sorted(
            bucket, key=lambda r: (bool(r.get("remote")), r.get("start_ns", 0))
        )

    return order(roots), {k: order(v) for k, v in children.items()}, order(orphans)


def render_trace(spans: Sequence[Mapping], bars: bool = True) -> str:
    """Render one trace's span records as an explain-analyze text tree."""
    if not spans:
        return "(empty trace)"
    roots, children, orphans = _children_index(spans)
    trace_id = spans[0].get("trace_id", "?")
    anchor = roots[0] if roots else spans[0]
    lines = [
        f"trace {trace_id} · {anchor.get('name', '?')} · "
        f"{_format_duration(anchor.get('duration_us') or 0)} · {len(spans)} spans"
    ]

    def emit(record: Mapping, prefix: str, branch: str, child_prefix: str) -> None:
        marker = "~ " if record.get("remote") else ""
        line = (
            f"{prefix}{branch}{marker}{record.get('name', '?')} "
            f"{_format_duration(record.get('duration_us') or 0)}"
            f"{_format_attrs(record)}"
        )
        if bars:
            line = f"{line:<72} {_bar(record, anchor)}"
        lines.append(line.rstrip())
        kids = children.get(record.get("span_id"), [])
        for index, kid in enumerate(kids):
            last = index == len(kids) - 1
            emit(
                kid,
                child_prefix,
                "└─ " if last else "├─ ",
                child_prefix + ("   " if last else "│  "),
            )

    for root in roots:
        emit(root, "", "", "")
    if orphans:
        lines.append("(orphans — parent span not in this trace)")
        for orphan in orphans:
            emit(orphan, "", "└─ ", "   ")
    return "\n".join(lines)


def render_last(tracer=None, bars: bool = True) -> str:
    """Render the most recently started trace of ``tracer`` (default global)."""
    if tracer is None:
        from .trace import get_tracer

        tracer = get_tracer()
    trace_id, spans = tracer.last_trace()
    if trace_id is None:
        return "(no traces recorded)"
    return render_trace(spans, bars=bars)


def load_sink(path: str) -> List[dict]:
    """Parse a ``REPRO_TRACE_SINK`` JSONL file into trace documents."""
    documents: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            document = json.loads(line)
            if isinstance(document, dict) and "spans" in document:
                documents.append(document)
    return documents


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Render traces from a REPRO_TRACE_SINK JSONL file."
    )
    parser.add_argument("sink", help="path to the JSONL trace sink")
    parser.add_argument("--trace", help="trace id to render (default: last)")
    parser.add_argument("--list", action="store_true", dest="list_traces",
                        help="list one summary line per trace")
    parser.add_argument("--no-bars", action="store_true",
                        help="omit the timeline bars")
    args = parser.parse_args(argv)
    documents = load_sink(args.sink)
    if not documents:
        print("(sink holds no traces)", file=sys.stderr)
        return 1
    if args.list_traces:
        for document in documents:
            spans = document.get("spans", [])
            root = next(
                (s for s in spans if s.get("parent_id") is None), None
            ) or {}
            print(
                f"{document.get('trace_id')} {document.get('root', '?')} "
                f"{_format_duration(root.get('duration_us') or 0)} "
                f"({len(spans)} spans)"
            )
        return 0
    if args.trace:
        chosen = next(
            (d for d in documents if d.get("trace_id") == args.trace), None
        )
        if chosen is None:
            print(f"trace {args.trace} not found in {args.sink}", file=sys.stderr)
            return 1
    else:
        chosen = documents[-1]
    print(render_trace(chosen.get("spans", []), bars=not args.no_bars))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like any
        # well-behaved unix filter (devnull swallows the flush-at-exit).
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
