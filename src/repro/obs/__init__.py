"""Observability: query-lifecycle tracing, unified metrics, exporters.

Three small modules with one job each:

* :mod:`repro.obs.trace` — ``Span``/``Tracer`` trace trees with
  monotonic timings, per-trace sampling, wire-context propagation
  (worker-side :class:`~repro.obs.trace.ServeSpan` records stitched back
  into the parent tree), and a JSONL sink.  Behind ``REPRO_TRACE`` /
  ``REPRO_TRACE_SAMPLE`` / ``REPRO_TRACE_SINK``; off by default with
  ~zero overhead.
* :mod:`repro.obs.metrics` — counters, gauges, log-bucketed latency
  histograms (p50/p95/p99) and the :class:`MetricsRegistry` the existing
  ad-hoc stats objects register into, surfaced via
  ``QueryService.metrics_snapshot()`` and
  ``ServiceCluster.describe()["metrics"]``.
* :mod:`repro.obs.export` — the text explain-analyze renderer
  (:func:`render_trace`) and the JSONL sink CLI
  (``python -m repro.obs.export``).

See ``docs/observability.md`` for the span taxonomy, sink format, and
measured overhead.
"""

from .metrics import (
    METRICS_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from .trace import (
    NULL_SPAN,
    TRACE_SCHEMA_VERSION,
    ServeSpan,
    Span,
    Tracer,
    current_span,
    current_wire_context,
    get_tracer,
    reset_tracer,
    set_tracer,
    wire_context,
)
from .export import load_sink, render_last, render_trace

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "ServeSpan",
    "Span",
    "Tracer",
    "current_span",
    "current_wire_context",
    "get_tracer",
    "global_registry",
    "load_sink",
    "render_last",
    "render_trace",
    "reset_global_registry",
    "reset_tracer",
    "set_tracer",
    "wire_context",
]
