"""Query-lifecycle tracing: spans, trace trees, wire context, JSONL sink.

One query's life — reformulation, plan compile, fragment evaluation,
scatter waves, every remote scan attempt with its retries/hedges — is
recorded as a tree of :class:`Span` records keyed by a shared trace id.
Design constraints, in order:

1. **Tracing-off overhead is ~zero.**  With ``REPRO_TRACE`` unset the
   tracer hands out the :data:`NULL_SPAN` singleton whose every method
   is a no-op returning itself, so instrumentation sites cost one
   attribute check per *stage* (never per row).  Guard any expensive
   attribute computation with ``if span.recording:``.
2. **Spans close exactly once, by the code that opened them.**  Every
   instrumentation site opens its span in a ``with`` block (or closes in
   a ``finally``), including cancelled hedge losers and deadline-
   abandoned scan units; :meth:`Tracer.health` counts double-closes so
   the chaos suite can assert none happen.
3. **Worker-side time is stitched in, compatibly.**  A span's
   :meth:`~Span.wire_context` (a two-key dict) rides scan/insert
   requests across the transports; the serving side — possibly another
   process — wraps its work in a :class:`ServeSpan`, which produces a
   plain-dict record shipped back and grafted into the parent tree via
   :meth:`Tracer.adopt`.  A peer that ignores the context field simply
   produces no worker spans; nothing else changes (see
   ``docs/observability.md`` § Wire compatibility).

Sampling (``REPRO_TRACE_SAMPLE``) is decided once per trace root; an
unsampled query takes the same null path as tracing-off.  Completed
traces are kept in a bounded ring (newest ``max_traces``) and, when
``REPRO_TRACE_SINK`` is set, appended to that file as one JSON line per
trace at root-span close.  Span durations also feed ``span.<name>``
histograms in the global metrics registry, which is where the p50/p95/
p99 per stage come from.
"""

from __future__ import annotations

import json
import random
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterable, List, Mapping, Optional

from .. import config as _config
from .metrics import MetricsRegistry, global_registry

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "NULL_SPAN",
    "Span",
    "ServeSpan",
    "Tracer",
    "current_wire_context",
    "get_tracer",
    "set_tracer",
    "reset_tracer",
    "wire_context",
]

#: Version stamped on every sink line; bump on incompatible record
#: changes (key renames), not on additive attributes.
TRACE_SCHEMA_VERSION = 1


def _new_id() -> str:
    return f"{random.getrandbits(64):016x}"


class _NullSpan:
    """The disabled span: every operation is a no-op returning itself.

    Falsy on purpose, so sites can guard expensive attribute
    computation with ``if span:`` / ``if span.recording:``.
    """

    __slots__ = ()
    recording = False
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def set(self, key, value) -> "_NullSpan":
        return self

    def child(self, name, **attrs) -> "_NullSpan":
        return self

    def close(self, status: Optional[str] = None) -> None:
        return None

    def wire_context(self) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_SPAN"


#: The shared disabled span (tracing off, trace unsampled).
NULL_SPAN = _NullSpan()


class Span:
    """One timed stage of a trace; a context manager closing exactly once.

    Timings use ``time.monotonic_ns``.  Exiting the ``with`` block on an
    exception marks ``status="error"`` (without swallowing it); sites
    with richer outcomes (``cancelled``, ``deadline``) pass an explicit
    status to :meth:`close`.
    """

    __slots__ = ("_tracer", "name", "trace_id", "span_id", "parent_id",
                 "start_ns", "end_ns", "status", "attrs", "_closed",
                 "_prev_active")

    recording = True

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 parent_id: Optional[str], attrs: Optional[dict]):
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start_ns = time.monotonic_ns()
        self.end_ns: Optional[int] = None
        self.status = "ok"
        self.attrs = dict(attrs) if attrs else {}
        self._closed = False

    def set(self, key: str, value) -> "Span":
        """Attach one attribute (JSON-safe values only)."""
        self.attrs[key] = value
        return self

    def child(self, name: str, **attrs) -> "Span":
        """Open a child span under this one (same trace)."""
        return self._tracer._start_span(name, self.trace_id, self.span_id, attrs)

    def wire_context(self) -> Dict[str, str]:
        """The two-key dict that rides requests across transports."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    def close(self, status: Optional[str] = None) -> None:
        """Finish the span; a second close is counted, never recorded."""
        if self._closed:
            self._tracer._note_double_close(self.name)
            return
        self._closed = True
        self.end_ns = time.monotonic_ns()
        if status is not None:
            self.status = status
        self._tracer._finish(self)

    def __enter__(self) -> "Span":
        # Entering a span makes it the thread's ambient span (see
        # current_span) so downstream modules can parent to it without
        # signature changes; manually open/closed spans (the hedge-race
        # attempt spans) never touch the ambient state.
        self._prev_active = getattr(_ACTIVE, "span", None)
        _ACTIVE.span = self
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _ACTIVE.span = self._prev_active
        if exc_type is not None and self.status == "ok":
            self.status = "error"
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.close()
        return False

    def as_record(self) -> Dict[str, object]:
        end = self.end_ns if self.end_ns is not None else self.start_ns
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_ns": self.start_ns,
            "duration_us": (end - self.start_ns) // 1000,
            "status": self.status,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id})"


class ServeSpan:
    """Worker-side span for one RPC serve, parented under a wire context.

    The serving side of a transport — often another process with no
    :class:`Tracer` — wraps its work in one of these.  When ``context``
    is a valid wire context the exit builds a plain-dict record (same
    shape as :meth:`Span.as_record`, plus ``remote: true``) exposed as
    :attr:`record` for shipping back to the caller; when ``context`` is
    ``None`` or malformed every operation is a cheap no-op, which is
    exactly what an untraced (or old-client) request costs.
    """

    __slots__ = ("trace_id", "parent_id", "span_id", "name", "attrs",
                 "start_ns", "record", "_status")

    def __init__(self, context: Optional[Mapping], name: str, **attrs):
        trace_id = context.get("trace_id") if isinstance(context, Mapping) else None
        self.trace_id = trace_id
        self.parent_id = context.get("span_id") if trace_id else None
        self.span_id = _new_id() if trace_id else None
        self.name = name
        self.attrs = dict(attrs) if (attrs and trace_id) else {}
        self.start_ns = 0
        self.record: Optional[Dict[str, object]] = None
        self._status = "ok"

    @property
    def recording(self) -> bool:
        return self.trace_id is not None

    def set(self, key: str, value) -> "ServeSpan":
        if self.trace_id is not None:
            self.attrs[key] = value
        return self

    def __enter__(self) -> "ServeSpan":
        if self.trace_id is not None:
            self.start_ns = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.trace_id is not None:
            if exc_type is not None and self._status == "ok":
                self._status = "error"
                self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
            self.record = {
                "name": self.name,
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start_ns": self.start_ns,
                "duration_us": (time.monotonic_ns() - self.start_ns) // 1000,
                "status": self._status,
                "attrs": self.attrs,
                "remote": True,
            }
        return False

    def records(self) -> List[Dict[str, object]]:
        """The shippable record list (empty when untraced or unfinished)."""
        return [self.record] if self.record is not None else []


_ACTIVE = threading.local()


def current_span():
    """The innermost span entered (via ``with``) on this thread.

    :data:`NULL_SPAN` when tracing is off, the query was not sampled, or
    the caller is on a pool thread the trace never crossed into — child
    spans of the result are then no-ops, so instrumentation sites never
    need to special-case any of those.
    """
    span = getattr(_ACTIVE, "span", None)
    return span if span is not None else NULL_SPAN


_WIRE = threading.local()


def current_wire_context() -> Optional[Dict[str, str]]:
    """The wire trace context installed for the current thread, if any.

    Transports read this at their RPC boundary and attach it to the
    outgoing message (and unwrap the worker spans shipped back).  The
    out-of-band channel is what keeps the ``Transport`` protocol — and
    every subclass override of ``scan_batch`` in the chaos suites —
    signature-compatible: a transport that never reads it simply ignores
    the field, which is exactly the old-peer interop contract.
    """
    return getattr(_WIRE, "ctx", None)


class wire_context:
    """Install a wire trace context around nested transport RPCs.

    ``with wire_context(span.wire_context()): transport.scan_batch(...)``
    — the context is thread-local (each scan attempt runs its RPC in one
    pool thread), restored on exit, and ``None`` is a valid installation
    meaning "untraced" (the tracing-off fast path installs nothing).
    """

    __slots__ = ("_ctx", "_prev")

    def __init__(self, ctx: Optional[Mapping]):
        self._ctx = ctx

    def __enter__(self) -> Optional[Mapping]:
        self._prev = getattr(_WIRE, "ctx", None)
        _WIRE.ctx = self._ctx
        return self._ctx

    def __exit__(self, exc_type, exc, tb) -> bool:
        _WIRE.ctx = self._prev
        return False


class Tracer:
    """Per-process trace collector: sampling, bounded retention, sink.

    ``enabled``/``sample_rate``/``sink_path`` default to the
    ``REPRO_TRACE`` / ``REPRO_TRACE_SAMPLE`` / ``REPRO_TRACE_SINK``
    knobs (read once at construction — :func:`reset_tracer` re-reads).
    Completed span records accumulate per trace id in a bounded ring of
    the newest ``max_traces`` traces; when the *root* span closes the
    whole trace is flushed to the sink (one JSON line) if one is
    configured.  Span durations are observed into ``span.<name>``
    histograms on ``registry`` (default: the global registry).
    """

    def __init__(
        self,
        enabled: Optional[bool] = None,
        sample_rate: Optional[float] = None,
        sink_path: Optional[str] = None,
        max_traces: int = 128,
        registry: Optional[MetricsRegistry] = None,
        rng: Optional[random.Random] = None,
    ):
        self._enabled = _config.trace_enabled() if enabled is None else enabled
        self._sample = (
            _config.trace_sample_rate() if sample_rate is None else sample_rate
        )
        self._sink_path = (
            _config.trace_sink_path() if sink_path is None else sink_path
        )
        self._registry = registry
        self._rng = rng if rng is not None else random.Random()
        self._lock = threading.Lock()
        self._sink_lock = threading.Lock()
        self._traces: "OrderedDict[str, List[dict]]" = OrderedDict()
        self._open: Dict[str, int] = {}
        self._max_traces = max_traces
        self._last_trace_id: Optional[str] = None
        self._started = 0
        self._finished = 0
        self._adopted = 0
        self._double_closes = 0
        self._sampled_out = 0

    # -- starting spans ----------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def start_trace(self, name: str, **attrs):
        """Open a new trace's root span; :data:`NULL_SPAN` when off/unsampled."""
        if not self._enabled:
            return NULL_SPAN
        if self._sample < 1.0 and self._rng.random() >= self._sample:
            with self._lock:
                self._sampled_out += 1
            return NULL_SPAN
        trace_id = _new_id()
        with self._lock:
            self._traces[trace_id] = []
            self._last_trace_id = trace_id
            self._evict_locked()
        return self._start_span(name, trace_id, None, attrs)

    def _start_span(self, name: str, trace_id: str,
                    parent_id: Optional[str], attrs: Optional[dict]) -> Span:
        span = Span(self, name, trace_id, parent_id, attrs)
        with self._lock:
            self._started += 1
            self._open[trace_id] = self._open.get(trace_id, 0) + 1
        return span

    # -- finishing spans ---------------------------------------------------

    def _finish(self, span: Span) -> None:
        record = span.as_record()
        with self._lock:
            self._finished += 1
            remaining = self._open.get(span.trace_id, 1) - 1
            if remaining <= 0:
                self._open.pop(span.trace_id, None)
            else:
                self._open[span.trace_id] = remaining
            bucket = self._traces.get(span.trace_id)
            if bucket is None:
                bucket = self._traces[span.trace_id] = []
                self._evict_locked()
            bucket.append(record)
            flush = list(bucket) if span.parent_id is None else None
        self._observe(span.name, record["duration_us"])
        if flush is not None and self._sink_path:
            self._flush(span.trace_id, span.name, flush)

    def _note_double_close(self, name: str) -> None:
        with self._lock:
            self._double_closes += 1

    def _observe(self, name: str, duration_us: int) -> None:
        registry = self._registry if self._registry is not None else global_registry()
        registry.histogram(f"span.{name}").observe(duration_us / 1e6)

    def _evict_locked(self) -> None:
        while len(self._traces) > self._max_traces:
            evicted, _ = self._traces.popitem(last=False)
            self._open.pop(evicted, None)

    # -- worker-side stitching ---------------------------------------------

    def adopt(self, records: Iterable[Mapping]) -> int:
        """Graft worker-side :class:`ServeSpan` records into their traces.

        Records for traces already evicted from the ring open a fresh
        bucket (the renderer treats their spans as orphans).  Returns
        the number of records adopted; malformed ones are dropped.
        """
        count = 0
        for record in records or ():
            if not isinstance(record, Mapping):
                continue
            trace_id = record.get("trace_id")
            if not trace_id or "span_id" not in record:
                continue
            plain = dict(record)
            plain.setdefault("remote", True)
            with self._lock:
                bucket = self._traces.get(trace_id)
                if bucket is None:
                    bucket = self._traces[trace_id] = []
                    self._evict_locked()
                bucket.append(plain)
                self._adopted += 1
            duration = plain.get("duration_us")
            if isinstance(duration, (int, float)):
                self._observe(str(plain.get("name", "remote")), duration)
            count += 1
        return count

    # -- introspection -----------------------------------------------------

    def trace(self, trace_id: str) -> List[dict]:
        """The finished span records of one trace (copy; [] if unknown)."""
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def last_trace(self):
        """``(trace_id, spans)`` of the most recently started trace."""
        with self._lock:
            trace_id = self._last_trace_id
            spans = list(self._traces.get(trace_id, ())) if trace_id else []
        return trace_id, spans

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def health(self) -> Dict[str, int]:
        """Well-formedness counters the chaos suite asserts on."""
        with self._lock:
            return {
                "started": self._started,
                "finished": self._finished,
                "adopted": self._adopted,
                "open": sum(self._open.values()),
                "double_closes": self._double_closes,
                "sampled_out": self._sampled_out,
            }

    # -- sink --------------------------------------------------------------

    def _flush(self, trace_id: str, root: str, spans: List[dict]) -> None:
        line = json.dumps({
            "schema_version": TRACE_SCHEMA_VERSION,
            "trace_id": trace_id,
            "root": root,
            "spans": spans,
        }, default=str)
        try:
            with self._sink_lock:
                with open(self._sink_path, "a", encoding="utf-8") as sink:
                    sink.write(line + "\n")
        except OSError:
            # A broken sink must never fail the query it was observing;
            # disable further flushes instead of raising per trace.
            self._sink_path = None


_TRACER_LOCK = threading.Lock()
_TRACER: Optional[Tracer] = None


def get_tracer() -> Tracer:
    """The process-wide tracer (configured from ``REPRO_TRACE*`` once)."""
    global _TRACER
    tracer = _TRACER
    if tracer is not None:
        return tracer
    with _TRACER_LOCK:
        if _TRACER is None:
            _TRACER = Tracer()
        return _TRACER


def set_tracer(tracer: Optional[Tracer]) -> None:
    """Install a specific tracer (tests; ``None`` defers to lazy re-read)."""
    global _TRACER
    with _TRACER_LOCK:
        _TRACER = tracer


def reset_tracer() -> None:
    """Drop the process tracer so the next use re-reads the env knobs."""
    set_tracer(None)
