"""Unified metrics: counters, gauges, log-bucketed latency histograms.

Before this module existed every subsystem grew its own ad-hoc counter
bag — :class:`~repro.pdms.service.ServiceStats`,
:class:`~repro.pdms.materialization.FragmentCacheStats`,
``RemotePeerFactSource.scatter_stats()``, per-peer latency snapshots —
each with a private shape and no percentiles anywhere.  This module
gives them one registry to surface through:

* :class:`Counter` / :class:`Gauge` — thread-safe scalars for direct
  instrumentation on hot-ish paths (one lock hop per event; events are
  per-query or per-scan, never per-row).
* :class:`Histogram` — a log-bucketed latency histogram (powers of two
  from 1 µs) with O(1) memory and p50/p95/p99 estimates interpolated
  within the matching bucket.  The estimates carry bounded relative
  error (one bucket's width), the standard tradeoff for never keeping
  raw samples.
* :class:`MetricsRegistry` — named instruments plus *pull collectors*:
  an existing stats object registers a bound method returning its
  schema-versioned ``as_dict()`` and is re-read at snapshot time, so
  registration costs the hot path nothing.  Bound-method collectors are
  held through a weak reference to their owner, so a dead
  ``QueryService`` silently drops out of snapshots instead of leaking.

``MetricsRegistry.snapshot()`` is the single uniform surface: it is what
``QueryService.metrics_snapshot()`` returns and what
``ServiceCluster.describe()["metrics"]`` embeds.  Snapshots are plain
data (fresh dicts of ints/floats) — mutating one never perturbs live
instruments.  See ``docs/observability.md``.
"""

from __future__ import annotations

import math
import threading
import weakref
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
]

#: Version stamped on every registry snapshot (and on the unified
#: ``as_dict()`` stats shapes that register into it).  Bump when a key
#: is renamed or its meaning changes; additions are compatible.
METRICS_SCHEMA_VERSION = 1


class Counter:
    """A monotonically increasing counter (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time value (thread-safe); ``set`` or ``add`` deltas."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Log-bucketed latency histogram with percentile estimates.

    Buckets are powers of two starting at 1 µs (32 buckets reach ~36
    minutes); an observation lands in the first bucket whose upper bound
    contains it, out-of-range values clamp to the end buckets.
    :meth:`percentile` walks the cumulative counts and interpolates
    linearly inside the matching bucket, so p50/p95/p99 are estimates
    with at most one bucket's relative error — O(1) memory, no raw
    samples kept.
    """

    MIN_BOUND = 1e-6
    BUCKET_COUNT = 32

    __slots__ = ("_lock", "_buckets", "_count", "_sum", "_max")

    def __init__(self):
        self._lock = threading.Lock()
        self._buckets = [0] * self.BUCKET_COUNT
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        """Fold one measured duration (seconds) into the histogram."""
        if seconds < 0:
            seconds = 0.0
        if seconds <= self.MIN_BOUND:
            index = 0
        else:
            index = min(
                self.BUCKET_COUNT - 1,
                int(math.ceil(math.log2(seconds / self.MIN_BOUND))),
            )
        with self._lock:
            self._buckets[index] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 1]) in seconds."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile {q!r} must be within [0, 1]")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            cumulative = 0
            for index, bucket in enumerate(self._buckets):
                if bucket == 0:
                    continue
                if cumulative + bucket >= rank:
                    lower = 0.0 if index == 0 else self.MIN_BOUND * 2 ** (index - 1)
                    upper = self.MIN_BOUND * 2 ** index
                    fraction = (rank - cumulative) / bucket
                    return min(lower + fraction * (upper - lower), self._max)
                cumulative += bucket
            return self._max

    def as_dict(self) -> Dict[str, float]:
        """Summary shape used by registry snapshots (milliseconds)."""
        with self._lock:
            count, total, peak = self._count, self._sum, self._max
        return {
            "count": count,
            "sum_ms": total * 1000.0,
            "mean_ms": (total / count * 1000.0) if count else 0.0,
            "p50_ms": self.percentile(0.50) * 1000.0,
            "p95_ms": self.percentile(0.95) * 1000.0,
            "p99_ms": self.percentile(0.99) * 1000.0,
            "max_ms": peak * 1000.0,
        }


class MetricsRegistry:
    """Named instruments plus pull collectors; one uniform snapshot.

    Instruments are get-or-create by name (:meth:`counter`,
    :meth:`gauge`, :meth:`histogram`).  Collectors are zero-argument
    callables returning a fresh plain dict — typically the
    schema-versioned ``as_dict()`` of an existing stats object — invoked
    only at :meth:`snapshot` time.  A collector that is a bound method
    is held via a weak reference to its owner and pruned once the owner
    is gone.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        # name -> (weakref-to-owner | None, callable); for bound methods
        # the callable is the underlying function taking the owner.
        self._collectors: Dict[str, Tuple[Optional[weakref.ref], Callable]] = {}

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    # -- collectors --------------------------------------------------------

    def register_collector(self, name: str, collect: Callable[[], dict]) -> None:
        """Register a pull collector under ``name`` (replaces any prior).

        ``collect`` must return a fresh plain dict each call; bound
        methods are weakly referenced through their owner so that
        registration never extends the owner's lifetime.
        """
        owner = getattr(collect, "__self__", None)
        if owner is not None:
            entry = (weakref.ref(owner), collect.__func__)
        else:
            entry = (None, collect)
        with self._lock:
            self._collectors[name] = entry

    def unregister_collector(self, name: str) -> None:
        with self._lock:
            self._collectors.pop(name, None)

    # -- snapshot ----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A plain-data view of every instrument and live collector.

        The returned structure shares no mutable state with the registry;
        mutating it never perturbs live metrics.
        """
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histograms = list(self._histograms.items())
            collectors = list(self._collectors.items())
        collected: Dict[str, object] = {}
        dead: List[str] = []
        for name, (ref, func) in collectors:
            if ref is None:
                collected[name] = func()
            else:
                owner = ref()
                if owner is None:
                    dead.append(name)
                else:
                    collected[name] = func(owner)
        if dead:
            with self._lock:
                for name in dead:
                    self._collectors.pop(name, None)
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "counters": counters,
            "gauges": gauges,
            "histograms": {name: h.as_dict() for name, h in histograms},
            "collected": collected,
        }


_GLOBAL_LOCK = threading.Lock()
_GLOBAL: Optional[MetricsRegistry] = None


def global_registry() -> MetricsRegistry:
    """The process-wide registry (span-latency histograms, RPC counters)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is None:
            _GLOBAL = MetricsRegistry()
        return _GLOBAL


def reset_global_registry() -> None:
    """Drop the process-wide registry (tests and benchmark isolation)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = None
