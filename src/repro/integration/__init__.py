"""Classic two-tier data-integration substrate (GAV, LAV, MiniCon, Bucket).

The PDMS of the paper generalises this two-tier picture; the PDMS package
reuses the MiniCon MCD construction implemented here for its inclusion
expansions, and the GAV unfolding logic for its definitional expansions.
"""

from .bucket import rewrite as bucket_rewrite
from .certain import certain_answers_by_freezing, freeze_canonical_instance
from .gav import GAVMediator
from .inverse_rules import (
    SkolemValue,
    build_canonical_instance,
    certain_answers,
    contains_skolem,
)
from .lav import LAVMediator, RewritingAlgorithm
from .minicon import MCD, create_mcds
from .minicon import rewrite as minicon_rewrite
from .views import View, ViewKind, ViewSet

__all__ = [
    "GAVMediator",
    "LAVMediator",
    "MCD",
    "RewritingAlgorithm",
    "SkolemValue",
    "View",
    "ViewKind",
    "ViewSet",
    "bucket_rewrite",
    "build_canonical_instance",
    "certain_answers",
    "certain_answers_by_freezing",
    "contains_skolem",
    "create_mcds",
    "freeze_canonical_instance",
    "minicon_rewrite",
]
