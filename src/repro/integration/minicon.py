"""The MiniCon algorithm for answering queries using views.

MiniCon (Pottinger & Halevy, VLDB Journal 2001) is the LAV rewriting
algorithm the paper builds its *inclusion expansion* on (Section 4.1
recalls it explicitly).  It has two phases:

1. **MCD construction.**  For every query subgoal ``g`` and every view
   ``V`` containing a subgoal unifiable with ``g``, try to build a
   *MiniCon description* (MCD).  The MCD records which query subgoals the
   view atom covers; the defining properties are

   * C1 — a distinguished (head) variable of the query that occurs in a
     covered subgoal must be mapped to a distinguished variable of the
     view (or to a constant), and
   * C2 — if a query variable is mapped to an *existential* variable of
     the view, then **every** query subgoal mentioning that variable must
     be covered by this same MCD.

   Property C2 is why an MCD "may tell us that it covers more than the
   original subgoal for which it was created" — exactly the behaviour the
   PDMS reformulation algorithm records in its ``unc`` labels.

2. **Combination.**  Rewritings are produced by combining MCDs whose
   covered-subgoal sets are *disjoint* and together cover every relational
   subgoal of the query.

The same MCD construction is reused by :mod:`repro.pdms.reformulation` for
inclusion expansions, where the "query" is the parent rule node's head and
children and the "view" is the normalised inclusion description ``V ⊆ Q2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom, ComparisonAtom
from ..datalog.containment import remove_redundant_disjuncts
from ..datalog.queries import ConjunctiveQuery, UnionQuery
from ..datalog.terms import Constant, FreshVariableFactory, Term, Variable, is_variable
from ..datalog.unify import Substitution, apply_substitution_term, unify_atoms
from .views import View, ViewSet


@dataclass(frozen=True)
class MCD:
    """A MiniCon description.

    Attributes
    ----------
    view:
        The view this MCD uses.
    view_atom:
        The atom over the view's name to place in rewritings.  Its
        arguments are expressed in terms of the query's variables and
        constants wherever the view exports them; positions bound only to
        view existentials carry fresh variables.
    covered:
        Indices (into the query's *relational* body) of the subgoals this
        MCD covers.
    created_for:
        Index of the subgoal the MCD construction started from.
    equalities:
        Equality atoms the rewriting must enforce because the unification
        behind this MCD identified two exported query variables with each
        other (or with a constant) — e.g. covering both ``Skill(f1,s)``
        and ``Skill(f2,s)`` with the *same* view subgoal forces ``f1 = f2``.
        Omitting them would make the rewriting unsound.
    """

    view: View
    view_atom: Atom
    covered: FrozenSet[int]
    created_for: int
    equalities: Tuple[ComparisonAtom, ...] = ()

    def __str__(self) -> str:
        goals = ",".join(str(i) for i in sorted(self.covered))
        extra = f" with {', '.join(map(str, self.equalities))}" if self.equalities else ""
        return f"MCD({self.view_atom} covers [{goals}]{extra})"


class _MCDBuilder:
    """Backtracking construction of all MCDs for one query/view pair."""

    def __init__(self, query: ConjunctiveQuery, view: View, fresh: FreshVariableFactory):
        self._query = query
        self._view = view
        self._fresh = fresh
        self._subgoals: List[Atom] = query.relational_body()
        self._query_vars = query.all_variables()
        self._distinguished = set(query.head_variables())
        # Rename the view apart from the query once per builder.
        renamed = view.definition.rename_apart(fresh)
        self._view_head = renamed.head
        self._view_body: List[Atom] = renamed.relational_body()
        self._view_head_vars = set(renamed.head.variables())
        self._view_existentials = renamed.body_variables() - self._view_head_vars

    # -- helpers -----------------------------------------------------------------

    def _resolve(self, term: Term, theta: Substitution) -> Term:
        return apply_substitution_term(term, theta)

    def _exported(self, variable: Variable, theta: Substitution) -> bool:
        """Does the equivalence class of ``variable`` under ``theta`` contain a
        constant or a view head variable?  (Then the view exports it.)"""
        value = self._resolve(variable, theta)
        if not is_variable(value):
            return True
        return any(self._resolve(v, theta) == value for v in self._view_head_vars)

    def _subgoals_with(self, variable: Variable) -> Set[int]:
        return {
            i
            for i, atom in enumerate(self._subgoals)
            if variable in atom.variable_set()
        }

    # -- construction -------------------------------------------------------------

    def build_for(self, start_index: int) -> Iterator[MCD]:
        """Yield every MCD whose construction starts at subgoal ``start_index``."""
        start_atom = self._subgoals[start_index]
        for view_atom in self._view_body:
            theta = unify_atoms(start_atom, view_atom)
            if theta is None:
                continue
            used_view_atoms = {id(view_atom)}
            yield from self._close({start_index}, theta, used_view_atoms, start_index)

    def _close(
        self,
        covered: Set[int],
        theta: Substitution,
        used_view_atoms: Set[int],
        start_index: int,
    ) -> Iterator[MCD]:
        # Find variables of covered subgoals that are mapped to view
        # existentials; every subgoal mentioning them must also be covered.
        required: Set[int] = set()
        for index in covered:
            for variable in self._subgoals[index].variable_set():
                if not self._exported(variable, theta):
                    required |= self._subgoals_with(variable)
        missing = required - covered
        if not missing:
            mcd = self._finalise(covered, theta, start_index)
            if mcd is not None:
                yield mcd
            return
        # Cover one missing subgoal by unifying it with some view body atom,
        # then recurse; different choices yield different MCDs.
        next_index = min(missing)
        target = self._subgoals[next_index]
        for view_atom in self._view_body:
            extended = unify_atoms(target, view_atom, theta)
            if extended is None:
                continue
            yield from self._close(
                covered | {next_index},
                extended,
                used_view_atoms | {id(view_atom)},
                start_index,
            )

    def _finalise(
        self, covered: Set[int], theta: Substitution, start_index: int
    ) -> Optional[MCD]:
        # Validity of the unifier: a view *existential* variable may not be
        # identified with a view head variable, with a constant, or with a
        # second existential — the view's definition does not guarantee such
        # equalities, so an MCD built on them would be unsound.  (In MiniCon
        # terms: head homomorphisms only ever equate distinguished view
        # variables.)
        if not self._existentials_stay_separate(theta):
            return None

        # Property C1: distinguished query variables occurring in covered
        # subgoals must be exported by the view.
        for index in covered:
            for variable in self._subgoals[index].variable_set():
                if variable in self._distinguished and not self._exported(variable, theta):
                    return None

        # Build the view atom of the rewriting: express every head position
        # of the view in terms of query variables/constants when exported,
        # otherwise in terms of one fresh variable per equivalence class.
        class_fresh: Dict[Term, Variable] = {}
        args: List[Term] = []
        for head_arg in self._view_head.args:
            value = self._resolve(head_arg, theta)
            if not is_variable(value):
                args.append(value)
                continue
            # Prefer a query variable from the same class.
            query_var = self._class_query_variable(value, theta)
            if query_var is not None:
                args.append(query_var)
                continue
            fresh_var = class_fresh.get(value)
            if fresh_var is None:
                fresh_var = self._fresh("_mv")
                class_fresh[value] = fresh_var
            args.append(fresh_var)
        view_atom = Atom(self._view.name, args)
        equalities = self._induced_equalities(covered, theta)
        return MCD(
            view=self._view,
            view_atom=view_atom,
            covered=frozenset(covered),
            created_for=start_index,
            equalities=equalities,
        )

    def _induced_equalities(
        self, covered: Set[int], theta: Substitution
    ) -> Tuple[ComparisonAtom, ...]:
        """Equalities the unification forces among *exported* query variables.

        If two exported query variables of covered subgoals end up in the
        same equivalence class (or an exported variable ends up bound to a
        constant), the rewriting that uses this MCD only answers the query
        when those terms are actually equal, so the equality must travel
        with the MCD.
        """
        exported_vars = sorted(
            {
                variable
                for index in covered
                for variable in self._subgoals[index].variable_set()
                if self._exported(variable, theta)
            }
        )
        by_class: Dict[Term, List[Variable]] = {}
        equalities: List[ComparisonAtom] = []
        for variable in exported_vars:
            value = self._resolve(variable, theta)
            if not is_variable(value):
                equalities.append(ComparisonAtom(variable, "=", value))
                continue
            by_class.setdefault(value, []).append(variable)
        for members in by_class.values():
            representative = members[0]
            for other in members[1:]:
                equalities.append(ComparisonAtom(representative, "=", other))
        return tuple(equalities)

    def _existentials_stay_separate(self, theta: Substitution) -> bool:
        """Check that no view existential got merged with a head variable,
        a constant, or another existential by the unifier."""
        classes: Dict[Term, List[Variable]] = {}
        for existential in self._view_existentials:
            value = self._resolve(existential, theta)
            if not is_variable(value):
                return False  # existential forced equal to a constant
            classes.setdefault(value, []).append(existential)
        for value, members in classes.items():
            if len(members) > 1:
                return False  # two distinct existentials merged
            if any(self._resolve(head_var, theta) == value for head_var in self._view_head_vars):
                return False  # existential merged with a head variable
        return True

    def _class_query_variable(self, value: Term, theta: Substitution) -> Optional[Variable]:
        """Return a deterministic query variable whose class under ``theta`` is ``value``."""
        candidates = [
            variable
            for variable in sorted(self._query_vars)
            if self._resolve(variable, theta) == value
        ]
        if not candidates:
            return None
        # Prefer distinguished variables for readability; ties broken by name.
        for variable in candidates:
            if variable in self._distinguished:
                return variable
        return candidates[0]


def create_mcds(
    query: ConjunctiveQuery,
    view: View,
    fresh: Optional[FreshVariableFactory] = None,
    only_subgoal: Optional[int] = None,
) -> List[MCD]:
    """Create all MCDs for ``query`` with respect to a single ``view``.

    Parameters
    ----------
    only_subgoal:
        When given, only MCDs *created for* that relational-subgoal index
        are returned (the PDMS inclusion expansion asks for MCDs of one
        specific goal node).
    """
    if fresh is None:
        fresh = FreshVariableFactory()
        fresh.reserve(v.name for v in query.all_variables())
    builder = _MCDBuilder(query, view, fresh)
    indices: Iterable[int]
    if only_subgoal is None:
        indices = range(len(query.relational_body()))
    else:
        indices = [only_subgoal]
    results: List[MCD] = []
    seen: Set[Tuple[str, Tuple[Term, ...], FrozenSet[int]]] = set()
    for index in indices:
        for mcd in builder.build_for(index):
            key = (mcd.view_atom.predicate, mcd.view_atom.args, mcd.covered)
            if key not in seen:
                seen.add(key)
                results.append(mcd)
    return results


def _equalities_to_substitution(
    equalities: Sequence[ComparisonAtom],
) -> Optional[Dict[Variable, Term]]:
    """Resolve MCD-induced equalities into a substitution.

    Returns ``None`` when the equalities are contradictory (two distinct
    constants forced equal).  The substitution is flattened so a single
    application suffices.
    """
    from ..datalog.unify import apply_substitution_term

    substitution: Dict[Variable, Term] = {}
    for equality in equalities:
        left = apply_substitution_term(equality.left, substitution)
        right = apply_substitution_term(equality.right, substitution)
        if left == right:
            continue
        if is_variable(left):
            substitution[left] = right  # type: ignore[index]
        elif is_variable(right):
            substitution[right] = left  # type: ignore[index]
        else:
            return None
    return {
        variable: apply_substitution_term(variable, substitution)
        for variable in substitution
    }


def _combinations_covering(
    mcds: Sequence[MCD], total_subgoals: int
) -> Iterator[Tuple[MCD, ...]]:
    """Yield combinations of MCDs with disjoint coverage that cover everything."""
    all_goals = frozenset(range(total_subgoals))

    def backtrack(remaining: FrozenSet[int], chosen: Tuple[MCD, ...], start: int) -> Iterator[Tuple[MCD, ...]]:
        if not remaining:
            yield chosen
            return
        target = min(remaining)
        for index in range(start, len(mcds)):
            mcd = mcds[index]
            if target not in mcd.covered:
                continue
            if not mcd.covered <= remaining:
                continue  # must be disjoint from already-covered goals
            yield from backtrack(remaining - mcd.covered, chosen + (mcd,), 0)

    yield from backtrack(all_goals, (), 0)


def rewrite(
    query: ConjunctiveQuery,
    views: ViewSet | Iterable[View],
    minimize_result: bool = True,
) -> UnionQuery:
    """Compute the MiniCon rewriting of ``query`` using ``views``.

    Returns the union of conjunctive rewritings over the view predicates.
    Comparison atoms of the query are appended to each rewriting; a
    rewriting that cannot express one of them (because a variable it
    mentions is not exported by any chosen view) is discarded, which keeps
    the result sound.
    """
    view_set = views if isinstance(views, ViewSet) else ViewSet(views)
    fresh = FreshVariableFactory()
    fresh.reserve(v.name for v in query.all_variables())

    subgoals = query.relational_body()
    all_mcds: List[MCD] = []
    for view in view_set:
        all_mcds.extend(create_mcds(query, view, fresh))

    rewritings: List[ConjunctiveQuery] = []
    comparisons = query.comparison_body()
    for combo in _combinations_covering(all_mcds, len(subgoals)):
        equalities: List[ComparisonAtom] = []
        for mcd in combo:
            equalities.extend(mcd.equalities)
        substitution = _equalities_to_substitution(equalities)
        if substitution is None:
            continue
        head = query.head.substitute(substitution)
        body: List = [mcd.view_atom.substitute(substitution) for mcd in combo]
        available = set()
        for atom in body:
            available.update(atom.variable_set())
        # Every query comparison must be expressible over the chosen view
        # atoms; otherwise the combination would be unsound and is discarded.
        ok = True
        applied_comparisons = []
        for comparison in comparisons:
            comparison = comparison.substitute(substitution)
            if comparison.is_ground():
                if not comparison.evaluate_ground():
                    ok = False
                    break
                continue
            if not all(v in available for v in comparison.variables()):
                ok = False
                break
            applied_comparisons.append(comparison)
        if not ok:
            continue
        body.extend(applied_comparisons)
        # Head variables must be present (guaranteed by C1, but verify).
        if not all(v in available for v in head.variables()):
            continue
        rewritings.append(ConjunctiveQuery(head, body))

    if minimize_result:
        rewritings = remove_redundant_disjuncts(rewritings)
    return UnionQuery(rewritings, name=query.name, arity=query.arity)
