"""Brute-force certain-answer computation for small LAV settings.

The inverse-rules construction in :mod:`repro.integration.inverse_rules`
gives certain answers efficiently for conjunctive queries over sound
views.  For *validation* we also want an implementation that follows the
definition of certain answers as literally as possible: enumerate
candidate mediated-schema instances that are consistent with the view
extensions and intersect the query answers over them.

Enumerating all consistent instances is impossible in general (there are
infinitely many), but for testing we exploit a standard fact: for
monotonic (conjunctive) queries it suffices to consider the canonical
instance and arbitrary extensions of it, and any certain answer must
already appear over the canonical instance with nulls interpreted as
*some* values.  We therefore cross-check by substituting fresh distinct
constants for nulls ("freezing"), which gives the same certain answers
for CQs — this module exposes that independent path so property tests can
compare the two.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, Sequence, Set, Tuple

from ..database.instance import Instance
from ..datalog.evaluation import FactsLike, evaluate_query
from ..datalog.queries import ConjunctiveQuery
from .inverse_rules import SkolemValue, build_canonical_instance, contains_skolem
from .views import View, ViewSet

Row = Tuple[object, ...]


def freeze_canonical_instance(canonical: Instance) -> Instance:
    """Replace every labelled null with a fresh, distinct frozen constant.

    Freezing turns the canonical instance into an ordinary instance that
    is one particular consistent world; evaluating a CQ on it and keeping
    only null-free answers yields the certain answers (monotonicity).
    """
    frozen = Instance()
    replacements: Dict[SkolemValue, str] = {}

    def frozen_value(value: object) -> object:
        if isinstance(value, SkolemValue):
            if value not in replacements:
                replacements[value] = f"⊥{len(replacements)}"
            return replacements[value]
        return value

    for relation in canonical.relations():
        for row in canonical.get_tuples(relation):
            frozen.add(relation, tuple(frozen_value(v) for v in row))
    return frozen


def certain_answers_by_freezing(
    query: ConjunctiveQuery,
    views: ViewSet | Iterable[View],
    view_extensions: FactsLike,
) -> Set[Row]:
    """Certain answers computed on the frozen canonical instance.

    An answer is certain iff it is produced over the frozen instance and
    contains no frozen null.  This is an independent implementation path
    from :func:`repro.integration.inverse_rules.certain_answers` (which
    evaluates over the unfrozen instance); tests assert the two agree.
    """
    view_set = views if isinstance(views, ViewSet) else ViewSet(views)
    canonical = build_canonical_instance(view_set, view_extensions)
    frozen = freeze_canonical_instance(canonical)
    answers = evaluate_query(query, frozen)
    return {
        row
        for row in answers
        if not any(isinstance(v, str) and v.startswith("⊥") for v in row)
    }
