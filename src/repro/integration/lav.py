"""Local-as-view (LAV) mediation facade.

A :class:`LAVMediator` holds the source descriptions (views over the
mediated schema) and answers queries posed over the mediated schema by
rewriting them over the sources, using either MiniCon (default) or the
Bucket algorithm, and optionally computing certain answers directly with
the inverse-rules construction for validation.
"""

from __future__ import annotations

from enum import Enum
from typing import Iterable, Set, Tuple

from ..datalog.evaluation import FactsLike, evaluate_union
from ..datalog.queries import ConjunctiveQuery, UnionQuery
from ..errors import MappingError
from . import bucket as bucket_module
from . import minicon as minicon_module
from .inverse_rules import certain_answers as inverse_rules_certain_answers
from .views import View, ViewSet

Row = Tuple[object, ...]


class RewritingAlgorithm(str, Enum):
    """Which rewriting algorithm a :class:`LAVMediator` uses."""

    MINICON = "minicon"
    BUCKET = "bucket"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class LAVMediator:
    """A LAV data-integration mediator.

    Parameters
    ----------
    sources:
        Source descriptions: views whose head predicate is the *source*
        relation and whose body is over the mediated schema.
    algorithm:
        Rewriting algorithm to use (:class:`RewritingAlgorithm`).
    """

    def __init__(
        self,
        sources: Iterable[View] = (),
        algorithm: RewritingAlgorithm = RewritingAlgorithm.MINICON,
    ):
        self._views = ViewSet(sources)
        self._algorithm = algorithm

    @property
    def views(self) -> ViewSet:
        """The registered source descriptions."""
        return self._views

    @property
    def algorithm(self) -> RewritingAlgorithm:
        """The rewriting algorithm in use."""
        return self._algorithm

    def add_source(self, view: View) -> None:
        """Register one more source description."""
        self._views.add(view)

    def rewrite(self, query: ConjunctiveQuery) -> UnionQuery:
        """Rewrite a mediated-schema query over the source relations."""
        if self._algorithm is RewritingAlgorithm.MINICON:
            return minicon_module.rewrite(query, self._views)
        if self._algorithm is RewritingAlgorithm.BUCKET:
            return bucket_module.rewrite(query, self._views)
        raise MappingError(f"unknown rewriting algorithm {self._algorithm}")

    def answer(self, query: ConjunctiveQuery, source_data: FactsLike) -> Set[Row]:
        """Rewrite the query and evaluate the rewriting over source extensions."""
        rewriting = self.rewrite(query)
        return evaluate_union(rewriting, source_data)

    def certain_answers(self, query: ConjunctiveQuery, source_data: FactsLike) -> Set[Row]:
        """Certain answers via the inverse-rules canonical instance (ground truth)."""
        return inverse_rules_certain_answers(query, self._views, source_data)
