"""View definitions shared by the GAV and LAV mediators.

A *view* is a named conjunctive query.  In GAV, views define mediated-schema
relations over source relations ("the relations in the mediated schema are
defined as views over the relations in the sources"); in LAV, views describe
source relations over the mediated schema ("the relations in the sources are
specified as views over the mediated schema"), optionally as containment
(open-world) rather than equality (closed-world) — Section 2.1.1 of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Sequence

from ..datalog.queries import ConjunctiveQuery
from ..errors import MappingError


class ViewKind(str, Enum):
    """Whether the view's extension equals or is contained in its definition."""

    EXACT = "exact"          # closed world: extension = query result
    CONTAINED = "contained"  # open world:  extension ⊆ query result

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class View:
    """A named view ``name(args) = / ⊆ definition``.

    Parameters
    ----------
    definition:
        The defining conjunctive query.  Its head predicate is the view
        name and its head arity the view arity.
    kind:
        ``ViewKind.EXACT`` for equality views, ``ViewKind.CONTAINED`` for
        containment (sound but possibly incomplete) views.
    """

    definition: ConjunctiveQuery
    kind: ViewKind = ViewKind.CONTAINED

    @property
    def name(self) -> str:
        """The view (head) name."""
        return self.definition.name

    @property
    def arity(self) -> int:
        """The view (head) arity."""
        return self.definition.arity

    def __str__(self) -> str:
        symbol = "=" if self.kind is ViewKind.EXACT else "⊆"
        body = ", ".join(str(a) for a in self.definition.body)
        return f"{self.definition.head} {symbol} {body}"


class ViewSet:
    """A collection of views indexed by name and by body predicate.

    The index by body predicate is what both MiniCon and the Bucket
    algorithm iterate over: "find the views that contain an atom of this
    predicate".
    """

    def __init__(self, views: Iterable[View] = ()):
        self._views: list[View] = []
        self._by_name: dict[str, View] = {}
        self._by_predicate: dict[str, list[View]] = {}
        for view in views:
            self.add(view)

    def add(self, view: View) -> None:
        """Add a view; duplicate view names are rejected."""
        if view.name in self._by_name:
            raise MappingError(f"duplicate view name {view.name!r}")
        self._views.append(view)
        self._by_name[view.name] = view
        for predicate in view.definition.predicates():
            self._by_predicate.setdefault(predicate, []).append(view)

    def by_name(self, name: str) -> View:
        """Look up a view by its name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise MappingError(f"no view named {name!r}") from exc

    def with_predicate(self, predicate: str) -> Sequence[View]:
        """All views whose definition body mentions ``predicate``."""
        return tuple(self._by_predicate.get(predicate, ()))

    def __iter__(self) -> Iterator[View]:
        return iter(self._views)

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name
