"""Global-as-view (GAV) mediation: view unfolding.

In GAV, each mediated-schema relation is defined by one or more views
(conjunctive queries) over the source relations; a mediated relation with
several defining views denotes their union (the paper's Example 2.2 defines
``9DC:SkilledPerson`` as a union over the H and FS schemas).  Query
answering "amounts to view unfolding": every subgoal over a mediated
relation is replaced by the body of one of its definitions, and the cross
product of the choices yields a union of conjunctive queries over the
sources.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..datalog.atoms import Atom, BodyAtom, ComparisonAtom
from ..datalog.queries import ConjunctiveQuery, UnionQuery
from ..datalog.terms import FreshVariableFactory, Variable
from ..datalog.unify import (
    Substitution,
    apply_substitution_atom,
    apply_substitution_body,
    unify_atoms,
)
from ..errors import MappingError, ReformulationError
from .views import View, ViewKind, ViewSet


class GAVMediator:
    """A GAV mediator: mediated relations defined as views over sources.

    Parameters
    ----------
    definitions:
        Views whose *head* predicates are mediated-schema relations and
        whose bodies mention only source relations (or other mediated
        relations, in which case unfolding recurses; recursion among
        definitions is rejected).
    """

    def __init__(self, definitions: Iterable[View] = ()):
        self._definitions: Dict[str, List[View]] = {}
        for view in definitions:
            self.add_definition(view)

    def add_definition(self, view: View) -> None:
        """Register one defining view for a mediated relation."""
        self._definitions.setdefault(view.name, []).append(view)

    def mediated_relations(self) -> frozenset[str]:
        """Names of relations defined by this mediator."""
        return frozenset(self._definitions)

    def definitions_for(self, relation: str) -> Sequence[View]:
        """The defining views of one mediated relation."""
        return tuple(self._definitions.get(relation, ()))

    # -- unfolding ---------------------------------------------------------------

    def unfold(self, query: ConjunctiveQuery, max_depth: int = 32) -> UnionQuery:
        """Unfold a query over the mediated schema into source queries.

        Every subgoal whose predicate is a mediated relation is replaced by
        the body of one of its definitions (head unified with the subgoal,
        existential variables freshened); the unifier is applied to the
        whole conjunct, so constants or repeated variables in definition
        heads propagate into the disjunct's head and remaining subgoals.
        Subgoals over source relations are left alone.  The result is the
        union over all choices.

        ``max_depth`` bounds nested unfolding through mediated relations
        that are defined in terms of other mediated relations, so that a
        (disallowed) recursive definition fails loudly instead of looping.
        """
        fresh = FreshVariableFactory()
        fresh.reserve(v.name for v in query.all_variables())
        results: List[ConjunctiveQuery] = []
        # Work-list of (conjunct, remaining unfolding budget).
        pending: List[tuple[ConjunctiveQuery, int]] = [(query, max_depth)]
        while pending:
            current, budget = pending.pop()
            target_index = self._first_mediated_subgoal(current)
            if target_index is None:
                results.append(current)
                continue
            if budget <= 0:
                raise ReformulationError(
                    "GAV unfolding exceeded the maximum depth; are the view "
                    "definitions recursive?"
                )
            target = current.body[target_index]
            assert isinstance(target, Atom)
            for view in self._definitions[target.predicate]:
                renamed = view.definition.rename_apart(fresh)
                unifier = unify_atoms(renamed.head, target)
                if unifier is None:
                    continue
                new_body: List[BodyAtom] = list(current.body)
                new_body[target_index : target_index + 1] = renamed.body
                unfolded = ConjunctiveQuery(
                    apply_substitution_atom(current.head, unifier),
                    apply_substitution_body(new_body, unifier),
                )
                pending.append((unfolded, budget - 1))
        return UnionQuery(results, name=query.name, arity=query.arity)

    def _first_mediated_subgoal(self, query: ConjunctiveQuery) -> Optional[int]:
        """Index of the first body atom over a mediated relation, if any."""
        for index, atom in enumerate(query.body):
            if isinstance(atom, Atom) and atom.predicate in self._definitions:
                return index
        return None
