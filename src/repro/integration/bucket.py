"""The Bucket algorithm — the classical baseline for LAV rewriting.

The Bucket algorithm (Levy, Rajaraman, Ordille; VLDB 1996) predates
MiniCon and serves here as the comparison baseline: for every query
subgoal it builds a *bucket* of view atoms that could cover that subgoal,
then considers every element of the cross product of the buckets as a
candidate rewriting and keeps those that are contained in the query
(possibly after adding equality predicates).  It examines many more
candidates than MiniCon — which is exactly the inefficiency MiniCon was
designed to remove, and what the ablation benchmark measures.

Known limitation (kept on purpose, as it reflects the original algorithm's
candidate construction): when unifying a query subgoal with a view subgoal
binds a *distinguished query variable to a constant*, the bucket entry
carries the constant and the candidate loses the connection to the query's
head variable, so that rewriting is missed.  MiniCon records the induced
equality explicitly and therefore finds it.  The Bucket baseline is
sound — it only ever misses answers, never invents them — and the property
suite pins exactly that relationship (``bucket ⊆ minicon = certain``).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence

from ..datalog.atoms import Atom
from ..datalog.containment import is_contained_in, remove_redundant_disjuncts
from ..datalog.queries import ConjunctiveQuery, UnionQuery
from ..datalog.terms import FreshVariableFactory, Term, Variable, is_variable
from ..datalog.unify import apply_substitution_term, unify_atoms
from .views import View, ViewSet


def _bucket_entries(
    subgoal: Atom, view: View, fresh: FreshVariableFactory
) -> List[Atom]:
    """View atoms that can cover ``subgoal`` (one per unifiable view subgoal)."""
    entries: List[Atom] = []
    renamed = view.definition.rename_apart(fresh)
    head_vars = set(renamed.head.variables())
    for view_atom in renamed.relational_body():
        theta = unify_atoms(subgoal, view_atom)
        if theta is None:
            continue
        # Distinguished variables of the subgoal must be exported by the view
        # head or bound to constants; otherwise the candidate can never join
        # back correctly (kept as a cheap filter — the containment check at
        # the end is what guarantees soundness).
        args: List[Term] = []
        for head_arg in renamed.head.args:
            value = apply_substitution_term(head_arg, theta)
            if is_variable(value):
                query_side = [
                    q
                    for q in subgoal.variable_set()
                    if apply_substitution_term(q, theta) == value
                ]
                value = sorted(query_side)[0] if query_side else fresh("_bv")
            args.append(value)
        entries.append(Atom(view.name, args))
    return entries


def rewrite(
    query: ConjunctiveQuery,
    views: ViewSet | Iterable[View],
    minimize_result: bool = True,
) -> UnionQuery:
    """Compute a maximally-contained rewriting with the Bucket algorithm.

    Returns a union of conjunctive queries over the view predicates, each
    of which is contained in ``query`` when views are interpreted by their
    definitions (checked by expanding view atoms back into view bodies).
    """
    view_set = views if isinstance(views, ViewSet) else ViewSet(views)
    fresh = FreshVariableFactory()
    fresh.reserve(v.name for v in query.all_variables())

    subgoals = query.relational_body()
    buckets: List[List[Atom]] = []
    for subgoal in subgoals:
        bucket: List[Atom] = []
        for view in view_set:
            bucket.extend(_bucket_entries(subgoal, view, fresh))
        if not bucket:
            return UnionQuery((), name=query.name, arity=query.arity)
        buckets.append(bucket)

    comparisons = query.comparison_body()
    candidates: List[ConjunctiveQuery] = []
    for choice in product(*buckets):
        body: List = list(dict.fromkeys(choice))  # drop duplicate atoms, keep order
        available = set()
        for atom in body:
            available.update(atom.variable_set())
        if not all(v in available for v in query.head_variables()):
            continue
        if not all(
            all(v in available for v in comparison.variables()) for comparison in comparisons
        ):
            continue
        body.extend(comparisons)
        candidate = ConjunctiveQuery(query.head, body)
        # The Bucket algorithm's verification step: the candidate is useful
        # if it is contained in the query, possibly after *adding equality
        # predicates* between its variables.  We search over ways of
        # equating the fresh placeholder variables with query variables of
        # the candidate — this exhaustive repair is exactly the extra work
        # MiniCon avoids, and it is what the ablation benchmark measures.
        repaired = _verify_with_equalities(candidate, query, view_set, fresh)
        if repaired is not None:
            candidates.append(repaired)

    if minimize_result:
        candidates = remove_redundant_disjuncts(candidates)
    return UnionQuery(candidates, name=query.name, arity=query.arity)


def _verify_with_equalities(
    candidate: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewSet,
    fresh: FreshVariableFactory,
    max_fresh: int = 6,
) -> Optional[ConjunctiveQuery]:
    """Return a candidate (possibly with equalities applied) contained in ``query``.

    Fresh placeholder variables (``_bv*``) may be replaced by query
    variables occurring in the candidate.  Tries the unmodified candidate
    first, then every combination of replacements; returns ``None`` when
    no combination makes the expansion contained in the query.  Candidates
    with more than ``max_fresh`` placeholders are rejected outright to
    bound the (intentionally naive) search.
    """
    expanded = expand_view_atoms(candidate, views, fresh)
    if expanded is not None and is_contained_in(expanded, query):
        return candidate

    placeholders = sorted(
        v for v in candidate.body_variables() if v.name.startswith("_bv")
    )
    if not placeholders or len(placeholders) > max_fresh:
        return None
    query_vars = sorted(
        v for v in candidate.body_variables() if not v.name.startswith("_bv")
    )
    options = [[p] + query_vars for p in placeholders]
    for assignment in product(*options):
        substitution = {
            placeholder: value
            for placeholder, value in zip(placeholders, assignment)
            if placeholder != value
        }
        if not substitution:
            continue
        repaired = candidate.substitute(substitution)
        expanded = expand_view_atoms(repaired, views, fresh)
        if expanded is not None and is_contained_in(expanded, query):
            return repaired
    return None


def expand_view_atoms(
    candidate: ConjunctiveQuery,
    views: ViewSet,
    fresh: Optional[FreshVariableFactory] = None,
) -> Optional[ConjunctiveQuery]:
    """Replace every view atom in ``candidate`` by the view's definition body.

    Used to check containment of a candidate rewriting in the original
    query.  Returns ``None`` if some view atom cannot be unified with its
    view's head (should not happen for atoms built by the bucket step).
    """
    if fresh is None:
        fresh = FreshVariableFactory()
        fresh.reserve(v.name for v in candidate.all_variables())
    body: List = []
    for atom in candidate.body:
        if isinstance(atom, Atom) and atom.predicate in views:
            view = views.by_name(atom.predicate)
            renamed = view.definition.rename_apart(fresh)
            theta = unify_atoms(renamed.head, atom)
            if theta is None:
                return None
            body.extend(
                a.substitute(theta) if isinstance(a, Atom) else a.substitute(theta)
                for a in renamed.body
            )
        else:
            body.append(atom)
    return ConjunctiveQuery(candidate.head, body)
