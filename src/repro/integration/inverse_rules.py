"""The inverse-rules algorithm and Skolem-based canonical instances.

The inverse-rules algorithm (Duschka & Genesereth, PODS 1997 — reference
[9] of the paper) answers LAV queries by turning every view definition

    V(X̅) :- p1(...), ..., pn(...)

into *inverse rules*: one rule per body atom,

    pi(...) :- V(X̅)

where each existential variable of the view is replaced by a Skolem term
over the view's head variables.  Evaluating the inverse rules over the
view extensions yields a canonical database containing labelled nulls
(Skolem values); evaluating the query over it and discarding any answer
containing a null gives exactly the certain answers for conjunctive
queries over sound (⊆) views.

We represent Skolem terms as :class:`SkolemValue` objects living in the
*value* space (not the term space), so the standard evaluation engine
handles them without modification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..database.instance import Instance
from ..datalog.atoms import Atom
from ..datalog.evaluation import FactsLike, as_fact_source, evaluate_query
from ..datalog.queries import ConjunctiveQuery
from ..datalog.terms import Constant, Variable, is_variable
from .views import View, ViewSet

Row = Tuple[object, ...]


@dataclass(frozen=True)
class SkolemValue:
    """A labelled null: the value of a view existential for one view tuple.

    ``function`` identifies the view and existential variable; ``args`` is
    the tuple of head values the Skolem term depends on.
    """

    function: str
    args: Tuple[object, ...]

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.function}({inner})"


def contains_skolem(row: Sequence[object]) -> bool:
    """Return ``True`` iff any position of the row is a labelled null."""
    return any(isinstance(value, SkolemValue) for value in row)


def build_canonical_instance(
    views: ViewSet | Iterable[View], view_extensions: FactsLike
) -> Instance:
    """Apply the inverse rules to view extensions, producing a canonical instance.

    Parameters
    ----------
    views:
        The LAV view definitions (source descriptions).
    view_extensions:
        Fact source holding the tuples of each *view* (source) relation.

    Returns
    -------
    Instance
        An instance over the mediated-schema relations whose unknown
        positions carry :class:`SkolemValue` labelled nulls.
    """
    view_set = views if isinstance(views, ViewSet) else ViewSet(views)
    source = as_fact_source(view_extensions)
    canonical = Instance()

    for view in view_set:
        definition = view.definition
        head_vars = definition.head_variables()
        existentials = sorted(definition.existential_variables())
        for row in source.get_tuples(view.name):
            if len(row) != definition.arity:
                continue
            binding: Dict[Variable, object] = {}
            consistent = True
            for arg, value in zip(definition.head.args, row):
                if is_variable(arg):
                    existing = binding.get(arg)  # type: ignore[arg-type]
                    if existing is not None and existing != value:
                        consistent = False
                        break
                    binding[arg] = value  # type: ignore[index]
                else:
                    assert isinstance(arg, Constant)
                    if arg.value != value:
                        consistent = False
                        break
            if not consistent:
                continue
            head_values = tuple(binding[v] for v in head_vars if v in binding)
            for existential in existentials:
                binding[existential] = SkolemValue(
                    f"f_{view.name}_{existential.name}", head_values
                )
            for atom in definition.relational_body():
                values: List[object] = []
                for arg in atom.args:
                    if is_variable(arg):
                        values.append(binding[arg])  # type: ignore[index]
                    else:
                        assert isinstance(arg, Constant)
                        values.append(arg.value)
                canonical.add(atom.predicate, values)
    return canonical


def certain_answers(
    query: ConjunctiveQuery,
    views: ViewSet | Iterable[View],
    view_extensions: FactsLike,
) -> Set[Row]:
    """Certain answers of ``query`` over sound LAV views via inverse rules.

    Builds the canonical instance, evaluates the query over it, and keeps
    only answers free of labelled nulls.  For conjunctive queries without
    comparison predicates over ``⊆`` views this returns exactly the
    certain answers.
    """
    canonical = build_canonical_instance(views, view_extensions)
    answers = evaluate_query(query, canonical)
    return {row for row in answers if not contains_skolem(row)}
