#!/usr/bin/env python3
"""Quickstart: build a tiny PDMS, reformulate a query, and answer it.

This walks through the whole public API in ~80 lines:

1. declare peers and their (virtual) peer relations,
2. declare stored relations via storage descriptions,
3. relate the peers with PPL peer mappings (one definitional, one LAV-style
   inclusion — the paper's Figure 2 descriptions r0–r3),
4. reformulate a query over peer relations into a union of conjunctive
   queries over stored relations and inspect the rule-goal tree,
5. evaluate the reformulation over actual data and cross-check against the
   certain-answer oracle.

Run it with::

    python examples/quickstart.py
"""

from repro.datalog import parse_atom, parse_query
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    StorageDescription,
    analyze_pdms,
    answer_query,
    certain_answers,
    lav_style,
    reformulate,
)


def build_pdms() -> PDMS:
    """The Figure-2 fire-services PDMS of the paper."""
    pdms = PDMS("quickstart")

    fire = pdms.add_peer("FS")
    fire.add_relation("SameEngine", ["f1", "f2", "e"])
    fire.add_relation("AssignedTo", ["f", "e"])
    fire.add_relation("Skill", ["f", "s"])
    fire.add_relation("SameSkill", ["f1", "f2"])
    fire.add_relation("Sched", ["f", "start", "end"])

    # r0 — definitional (GAV-style): SameEngine is *defined* over AssignedTo.
    pdms.add_peer_mapping(DefinitionalMapping(parse_query(
        "FS:SameEngine(f1, f2, e) :- FS:AssignedTo(f1, e), FS:AssignedTo(f2, e)"),
        name="r0"))

    # r1 — inclusion (LAV-style): SameSkill is contained in a join over Skill.
    pdms.add_peer_mapping(lav_style(
        parse_atom("FS:SameSkill(f1, f2)"),
        parse_query("R(f1, f2) :- FS:Skill(f1, s), FS:Skill(f2, s)"),
        name="r1"))

    # r2, r3 — storage descriptions: what the peer actually stores.
    pdms.add_storage_description(StorageDescription(
        "FS", "S1",
        parse_query("V(f, e, s) :- FS:AssignedTo(f, e), FS:Sched(f, st, s)"),
        name="r2"))
    pdms.add_storage_description(StorageDescription(
        "FS", "S2",
        parse_query("V(f1, f2) :- FS:SameSkill(f1, f2)"),
        exact=True, name="r3"))
    return pdms


def main() -> None:
    pdms = build_pdms()
    print(pdms.describe())
    print("\ncomplexity analysis:", analyze_pdms(pdms), "\n")

    # The Figure-2 query: pairs of firefighters with matching skills riding
    # the same engine.
    query = parse_query(
        "Q(f1, f2) :- FS:SameEngine(f1, f2, e), FS:Skill(f1, s), FS:Skill(f2, s)")
    result = reformulate(pdms, query)

    print("rule-goal tree "
          f"({result.statistics.total_nodes} nodes, depth {result.statistics.max_depth}):")
    print(result.tree.pretty())

    print("\nreformulated query (union over stored relations):")
    for rewriting in result.all_rewritings():
        print("  ", rewriting)

    # Stored data lives wherever the peers put it; here, a plain dict.
    data = {
        "S1": [("alice", "engine1", "17:00"),
               ("bob", "engine1", "18:00"),
               ("carol", "engine2", "17:00")],
        "S2": [("alice", "bob")],
    }
    answers = answer_query(pdms, query, data)
    oracle = certain_answers(pdms, query, data)
    print("\nanswers:        ", sorted(answers))
    print("certain answers:", sorted(oracle))
    assert answers == oracle, "reformulation disagrees with the certain-answer oracle"
    print("\nreformulation returned exactly the certain answers ✓")


if __name__ == "__main__":
    main()
