#!/usr/bin/env python3
"""Classic data integration (GAV / LAV) versus the PDMS generalisation.

The paper positions the PDMS as the generalisation of two-tier data
integration: "A data integration system can be viewed as a special case of
a PDMS."  This example builds the same hospital-staff mediation scenario
three ways and shows they return the same answers:

1. a classic GAV mediator (mediated relations unfolded into sources),
2. a classic LAV mediator (sources described as views, rewritten with
   MiniCon — and, for comparison, with the Bucket baseline),
3. a two-peer PDMS using a definitional mapping for (1) and an inclusion
   mapping for (2).

Run it with::

    python examples/integration_comparison.py
"""

from repro.datalog import evaluate_union, parse_atom, parse_query
from repro.integration import (
    GAVMediator,
    LAVMediator,
    RewritingAlgorithm,
    View,
)
from repro.pdms import (
    PDMS,
    DefinitionalMapping,
    StorageDescription,
    answer_query,
    lav_style,
)

SOURCE_DATA = {
    # src_doctor(sid, hospital, ward)     src_emt(sid, hospital)
    "src_doctor": [("d1", "FH", "ICU"), ("d2", "LH", "ER")],
    "src_emt": [("e1", "FH"), ("e2", "LH")],
    # lh_beds(bed, room, patient, status) — described as a view (LAV)
    "lh_beds": [("bed20", "icu-2", "p9", "critical"),
                ("bed21", "icu-2", "p10", "stable")],
}


def classic_gav():
    print("=== 1. classic GAV mediation (view unfolding)")
    mediator = GAVMediator([
        View(parse_query('Person(p, "Doctor") :- src_doctor(p, h, w)')),
        View(parse_query('Person(p, "EMT") :- src_emt(p, h)')),
    ])
    query = parse_query("Q(p, role) :- Person(p, role)")
    unfolded = mediator.unfold(query)
    print("  unfolded query:")
    for disjunct in unfolded:
        print("   ", disjunct)
    answers = evaluate_union(unfolded, SOURCE_DATA)
    print("  answers:", sorted(answers))
    return answers


def classic_lav():
    print("\n=== 2. classic LAV mediation (answering queries using views)")
    sources = [
        View(parse_query("lh_beds(bed, room, pid, status) :- "
                         "CritBed(bed, h, room), Patient(pid, bed, status)")),
    ]
    query = parse_query(
        "Q(pid, bed) :- CritBed(bed, h, room), Patient(pid, bed, status)")
    for algorithm in (RewritingAlgorithm.MINICON, RewritingAlgorithm.BUCKET):
        mediator = LAVMediator(sources, algorithm=algorithm)
        rewriting = mediator.rewrite(query)
        answers = mediator.answer(query, SOURCE_DATA)
        print(f"  {algorithm.value:8s}: rewriting {list(map(str, rewriting))}")
        print(f"            answers {sorted(answers)}")
    oracle = LAVMediator(sources).certain_answers(query, SOURCE_DATA)
    print("  certain answers (inverse rules):", sorted(oracle))
    return LAVMediator(sources).answer(query, SOURCE_DATA)


def as_pdms():
    print("\n=== 3. the same mediation expressed as a PDMS")
    pdms = PDMS("two-tier-as-pdms")
    mediator = pdms.add_peer("M")
    mediator.add_relation("Person", ["pid", "role"])
    mediator.add_relation("CritBed", ["bed", "hosp", "room"])
    mediator.add_relation("Patient", ["pid", "bed", "status"])
    sources = pdms.add_peer("S")
    sources.add_relation("Doctor", ["pid", "hosp", "ward"])
    sources.add_relation("EMT", ["pid", "hosp"])
    sources.add_relation("Beds", ["bed", "room", "pid", "status"])

    # GAV direction: definitional mappings.
    pdms.add_peer_mapping(DefinitionalMapping(
        parse_query('M:Person(p, "Doctor") :- S:Doctor(p, h, w)')))
    pdms.add_peer_mapping(DefinitionalMapping(
        parse_query('M:Person(p, "EMT") :- S:EMT(p, h)')))
    # LAV direction: an inclusion mapping.
    pdms.add_peer_mapping(lav_style(
        parse_atom("S:Beds(bed, room, pid, status)"),
        parse_query("R(bed, room, pid, status) :- M:CritBed(bed, h, room), "
                    "M:Patient(pid, bed, status)")))
    # Storage: the peers' stored relations are the source tables themselves.
    pdms.add_storage_description(StorageDescription(
        "S", "src_doctor", parse_query("V(p, h, w) :- S:Doctor(p, h, w)")))
    pdms.add_storage_description(StorageDescription(
        "S", "src_emt", parse_query("V(p, h) :- S:EMT(p, h)")))
    pdms.add_storage_description(StorageDescription(
        "S", "lh_beds", parse_query("V(b, r, p, s) :- S:Beds(b, r, p, s)")))

    gav_query = parse_query("Q(p, role) :- M:Person(p, role)")
    lav_query = parse_query(
        "Q(pid, bed) :- M:CritBed(bed, h, room), M:Patient(pid, bed, status)")
    gav_answers = answer_query(pdms, gav_query, SOURCE_DATA)
    lav_answers = answer_query(pdms, lav_query, SOURCE_DATA)
    print("  GAV-style query answers:", sorted(gav_answers))
    print("  LAV-style query answers:", sorted(lav_answers))
    return gav_answers, lav_answers


def main() -> None:
    gav_answers = classic_gav()
    lav_answers = classic_lav()
    pdms_gav, pdms_lav = as_pdms()
    assert pdms_gav == gav_answers
    assert pdms_lav == lav_answers
    print("\nPDMS answers match the classic two-tier mediators ✓")


if __name__ == "__main__":
    main()
