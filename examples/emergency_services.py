#!/usr/bin/env python3
"""The paper's running example: emergency services at the Oregon–Washington border.

Figure 1 of the paper sketches a PDMS in which hospitals and fire districts
publish stored relations, the Hospitals (H) and Fire Services (FS) peers
mediate them, and the 911 Dispatch Center (9DC) provides a global view.
The point of the example — and of this script — is *ad hoc extensibility*:
when an earthquake strikes, an Earthquake Command Center (ECC) joins the
system with a handful of mappings to the 9DC and immediately gains access
to every source relation through transitive reformulation.

Run it with::

    python examples/emergency_services.py
"""

from repro.datalog import parse_query
from repro.pdms import analyze_pdms, answer_query, certain_answers, reformulate
from repro.workload import (
    add_earthquake_command_center,
    build_emergency_services,
    example_queries,
    sample_instance,
)


def show_query(pdms, data, label, query) -> None:
    result = reformulate(pdms, query)
    answers = answer_query(pdms, query, data)
    print(f"\n=== {label}")
    print(f"    query:       {query}")
    print(f"    tree:        {result.statistics.total_nodes} nodes, "
          f"{len(result.all_rewritings())} rewritings")
    for rewriting in result.all_rewritings()[:3]:
        print(f"      e.g. {rewriting}")
    print(f"    answers:     {sorted(answers)}")
    oracle = certain_answers(pdms, query, data)
    status = "= certain answers" if answers == oracle else f"⊆ certain answers {sorted(oracle)}"
    print(f"    soundness:   {status}")


def main() -> None:
    # Build the pre-earthquake system first: no ECC yet.
    pdms = build_emergency_services(include_ecc=False)
    data = sample_instance()
    print(pdms.describe())
    print("\ncomplexity analysis:", analyze_pdms(pdms))

    show_query(pdms, data, "Doctors known to the 911 Dispatch Center",
               parse_query('Q(pid) :- 9DC:SkilledPerson(pid, "Doctor")'))
    show_query(pdms, data, "EMTs, including firefighters with medical skills",
               parse_query('Q(pid) :- 9DC:SkilledPerson(pid, "EMT")'))
    show_query(pdms, data, "Critical beds with their location",
               parse_query('Q(bid, loc) :- 9DC:Bed(bid, loc, "critical")'))

    # --- the earthquake hits: the ECC joins ad hoc -----------------------------
    print("\n" + "=" * 72)
    print("Earthquake!  The Earthquake Command Center joins the PDMS with a")
    print("few mappings to the 911 Dispatch Center (including the replication")
    print("equality ECC:Vehicle = 9DC:Vehicle from Section 3 of the paper).")
    add_earthquake_command_center(pdms)
    print("=" * 72)

    show_query(pdms, data, "Vehicles visible from the ECC (via replication)",
               parse_query("Q(vid, type, gps) :- ECC:Vehicle(vid, type, c, gps, d)"))
    show_query(pdms, data, "Medical responders the ECC can dispatch",
               parse_query('Q(pid) :- ECC:Responder(pid, "EMT")'))
    show_query(pdms, data, "Beds the ECC can route victims to",
               parse_query("Q(bid, cls) :- ECC:Bed(bid, loc, cls)"))

    # All prepared example queries at a glance.
    print("\nAll prepared example queries:")
    for name, query in example_queries().items():
        answers = answer_query(pdms, query, data)
        print(f"  {name:28s} -> {len(answers)} answers")


if __name__ == "__main__":
    main()
