#!/usr/bin/env python3
"""The service layer in action: cached queries under ECC-style churn.

Walks the paper's Figure-1 story through ``QueryService``: the
emergency-services PDMS serves a stream of repeated queries from its
reformulation cache; the Earthquake Command Center joins ad hoc (evicting
*nothing*, because no cached rule-goal tree touched ECC predicates),
immediately answers queries through transitive mappings, and leaves again
(evicting only the two ECC-dependent entries).  A synthetic churn
scenario then shows the same machinery under sustained join/leave load.

Run it with::

    python examples/service_churn.py
"""

from repro.pdms import QueryService, answer_query
from repro.workload import (
    ChurnParameters,
    add_earthquake_command_center,
    build_emergency_services,
    example_queries,
    generate_churn_scenario,
    sample_instance,
)


def emergency_story() -> None:
    pdms = build_emergency_services(include_ecc=False)
    service = QueryService(pdms, data=sample_instance())
    queries = example_queries()

    print("=== before the earthquake: warm the cache")
    for name in ("skilled_doctors", "skilled_people", "critical_beds", "doctor_hours"):
        answers = service.answer(queries[name])
        print(f"  {name:24s} {len(answers)} answers")
    repeat = service.answer(queries["skilled_doctors"])
    print(f"  repeated skilled_doctors -> {sorted(repeat)}  "
          f"(hits={service.stats.hits}, misses={service.stats.misses})")

    print("\n=== the ECC joins ad hoc")
    kept_before = service.cache_size
    add_earthquake_command_center(pdms)  # mutate the PDMS directly...
    for name in ("ecc_vehicles", "ecc_medical_responders"):
        answers = service.answer(queries[name])  # ...the service picks it up
        print(f"  {name:24s} {len(answers)} answers via transitive mappings")
    print(f"  cache entries kept across the join: {kept_before}/{kept_before} "
          f"(invalidations={service.stats.invalidations})")

    print("\n=== the ECC leaves again")
    service.remove_peer("ECC")
    survivors = service.cache_size
    answers = service.answer(queries["skilled_doctors"])
    fresh = answer_query(pdms, queries["skilled_doctors"], sample_instance())
    assert answers == fresh
    print(f"  surviving entries: {survivors} "
          f"(total invalidations={service.stats.invalidations})")
    print(f"  skilled_doctors still matches a from-scratch reformulation: "
          f"{sorted(answers)}")

    print("\n=== first-k streaming")
    first_two = service.answer(queries["skilled_people"], limit=2)
    print(f"  skilled_people limit=2 -> {sorted(first_two)} "
          f"(subset of the {len(service.answer(queries['skilled_people']))}-row answer)")


def synthetic_churn() -> None:
    print("\n=== synthetic churn: satellites joining/leaving under a query stream")
    scenario = generate_churn_scenario(ChurnParameters(seed=0))
    report = scenario.replay(verify=True)
    print(f"  {len(scenario.events)} events: {report.queries} queries, "
          f"{report.joins} joins, {report.leaves} leaves")
    print(f"  cache hit rate {report.hit_rate:.0%}, "
          f"{report.invalidations} provenance-targeted invalidations")
    print("  every answer verified against a from-scratch reformulation ✓")


if __name__ == "__main__":
    emergency_story()
    synthetic_churn()
