#!/usr/bin/env python3
"""Drive the Section-5 workload generator and reproduce the experiment shapes.

This is a miniature version of ``benchmarks/harness.py`` meant to be read:
it generates synthetic PDMSs with the paper's parameters (96 peers, varying
diameter, varying share of definitional mappings), reformulates the
benchmark query, and prints the rule-goal-tree sizes and rewriting times —
the quantities behind Figures 3 and 4 — for a small sweep.

Run it with::

    python examples/workload_experiments.py
"""

import time

from repro.pdms import answer_query, certain_answers, reformulate
from repro.workload import GeneratorParameters, generate_workload, populate_workload


def sweep_tree_sizes() -> None:
    print("=== Figure-3 shape: tree size vs diameter and %definitional mappings")
    print(f"  {'diameter':>9s} | " + " | ".join(f"dd={p:>3.0%}" for p in (0.0, 0.1, 0.25, 0.5)))
    for diameter in (2, 3, 4, 5, 6):
        sizes = []
        for ratio in (0.0, 0.10, 0.25, 0.50):
            workload = generate_workload(GeneratorParameters(
                num_peers=96, diameter=diameter, definitional_ratio=ratio, seed=7))
            result = reformulate(workload.pdms, workload.query)
            sizes.append(result.statistics.total_nodes)
        print(f"  {diameter:>9d} | " + " | ".join(f"{size:>7d}" for size in sizes))


def sweep_rewriting_times() -> None:
    print("\n=== Figure-4 shape: time to first/tenth/all rewritings (dd=10%)")
    print(f"  {'diameter':>9s} | {'1st (ms)':>9s} | {'10th (ms)':>9s} | {'all (ms)':>9s} | #rewritings")
    for diameter in (2, 3, 4, 5):
        workload = generate_workload(GeneratorParameters(
            num_peers=96, diameter=diameter, definitional_ratio=0.10, seed=7))
        start = time.perf_counter()
        result = reformulate(workload.pdms, workload.query)
        result.first_rewritings(1)
        first = time.perf_counter() - start
        result.first_rewritings(10)
        tenth = time.perf_counter() - start
        rewritings = result.all_rewritings()
        everything = time.perf_counter() - start
        print(f"  {diameter:>9d} | {first * 1000:>9.1f} | {tenth * 1000:>9.1f} | "
              f"{everything * 1000:>9.1f} | {len(rewritings)}")


def end_to_end_check() -> None:
    print("\n=== end-to-end: generated workload, random data, oracle cross-check")
    workload = generate_workload(GeneratorParameters(
        num_peers=24, diameter=3, definitional_ratio=0.25, seed=11))
    data = populate_workload(workload, rows_per_relation=8, domain_size=5)
    answers = answer_query(workload.pdms, workload.query, data)
    oracle = certain_answers(workload.pdms, workload.query, data)
    print(f"  query: {workload.query}")
    print(f"  answers = {len(answers)}, certain answers = {len(oracle)}, "
          f"agree: {answers == oracle}")


def main() -> None:
    sweep_tree_sizes()
    sweep_rewriting_times()
    end_to_end_check()


if __name__ == "__main__":
    main()
