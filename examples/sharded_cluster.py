#!/usr/bin/env python3
"""One peer relation, hash-sharded four ways, with a shared cache tier.

A single data-bearing peer ``P`` stores a 4,000-row relation.
``auto_shard`` splits it across four loopback workers under a
:class:`~repro.pdms.distributed.sharding.ShardMap`; a
:class:`~repro.pdms.distributed.cluster.ServiceCluster` then answers
through the ``"distributed"`` engine with shard-aware routing:

* a full scan fans out to all four shards (scattered concurrently);
* a constant-bound point lookup is **pruned** to the single owning
  shard — watch the per-shard scan counters;
* a routed insert lands on exactly the owning shard and moves the
  relation's composite version token;
* a second cluster (a stand-in for another process) answers a join
  query from the shared **cache tier** without rescanning the shards —
  and when the cache peer dies, the runtime silently degrades to
  computing locally, never to wrong answers.

Run it with::

    python examples/sharded_cluster.py
"""

from repro.database import Instance
from repro.datalog import parse_query
from repro.pdms import (
    PDMS,
    CacheTierClient,
    FragmentStore,
    LoopbackTransport,
    ServiceCluster,
    StorageDescription,
    auto_shard,
)
from repro.pdms.distributed.cache_tier import CACHE_PEER

ROWS = 4000


def build_pdms():
    pdms = PDMS("sharded-example")
    top = pdms.add_peer("T")
    top.add_relation("R", ["x", "y"])
    pdms.add_peer("P")
    pdms.add_storage_description(StorageDescription(
        "P", "sr", parse_query("V(x, y) :- T:R(x, y)"),
        exact=False, name="store_sr",
    ))
    return pdms


def scan_counts(transport, workers):
    return {name: transport.scan_count(name) for name in sorted(workers)}


def main():
    data = {"P": Instance.from_dict({"sr": {(i, i % 97) for i in range(ROWS)}})}
    shard_map, workers = auto_shard(data, 4)
    print(f"sharded {ROWS} rows of P.sr across {sorted(workers)}")

    store = FragmentStore()
    tier_transport = LoopbackTransport({CACHE_PEER: store})

    transport = LoopbackTransport(workers)
    with ServiceCluster(
        pdms=build_pdms(), transport=transport, shard_map=shard_map,
        cache_tier=CacheTierClient(tier_transport),
    ) as cluster:
        # Act 1: full scan fans out, point lookup prunes.
        full = cluster.answer(parse_query("Q(x, y) :- T:R(x, y)"))
        print(f"\nfull scan     -> {len(full.rows)} rows, "
              f"per-shard scans {scan_counts(transport, workers)}")
        point = cluster.answer(parse_query("Q(y) :- T:R(1234, y)"))
        print(f"point lookup  -> {sorted(point.rows)}, "
              f"per-shard scans {scan_counts(transport, workers)}")
        scatter = cluster.describe()["scatter"]
        print(f"scatter stats -> pruned={scatter['pruned_scans']} "
              f"fanout={scatter['fanout_scans']}")

        # Act 2: a routed insert lands on the owning shard only.
        cluster.insert("sr", [(777_777, "fresh")])
        owner = shard_map.owners_for_row("sr", (777_777, "fresh"))[0]
        lookup = cluster.answer(parse_query("Q(y) :- T:R(777777, y)"))
        print(f"\ninsert routed to {owner}; lookup -> {sorted(lookup.rows)}")

        # Act 3: a join fragment is published to the cache tier.
        join = parse_query("Q(x, z) :- T:R(x, y), T:R(y, z)")
        cluster.answer(join)
        tiered = cluster.stats.fragments.tier_puts
        print(f"join answered; fragments published to the tier: {tiered}")

    # A second cluster (fresh transport + cold local cache) over the same
    # live shards: the join comes straight from the shared tier.
    with ServiceCluster(
        pdms=build_pdms(), transport=LoopbackTransport(workers),
        shard_map=shard_map, cache_tier=CacheTierClient(tier_transport),
    ) as second:
        join = parse_query("Q(x, z) :- T:R(x, y), T:R(y, z)")
        answer = second.answer(join)
        hits = second.stats.fragments.tier_hits
        print(f"\nsecond cluster -> {len(answer.rows)} join rows, "
              f"tier hits {hits} (no shard rescans needed)")

        # Kill the cache peer: answers survive, only the counters notice.
        tier_transport.fail_peer(CACHE_PEER)
        second.service.fragment_cache.clear()
        again = second.answer(join)
        degraded = second.stats.fragments.tier_degraded
        flag = "complete" if again.complete else "INCOMPLETE"
        print(f"cache peer down -> {len(again.rows)} rows [{flag}], "
              f"tier degraded events {degraded}")
        assert again.rows == answer.rows and again.complete


if __name__ == "__main__":
    main()
