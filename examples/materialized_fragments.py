"""Cross-call fragment materialization: warm vs cold under trickled writes.

A small PDMS serves the same chain query repeatedly while a background
trickle of writes lands in *one* stored relation.  The service's
:class:`~repro.pdms.materialization.FragmentCache` keeps every fragment
that does not read the written relation warm across calls, so repeated
queries pay only the head projection — and a write invalidates exactly
the dependent fragments, visible in the ``ServiceStats`` counters this
script prints.

Run with::

    PYTHONPATH=src python examples/materialized_fragments.py
"""

import random
import time

from repro.database import Instance
from repro.datalog import parse_query
from repro.pdms import PDMS, QueryService, StorageDescription

ALTERNATIVES = 8
ROWS = 8000
DOMAIN = 40000


def build_system():
    """One peer, a 3-subgoal chain, and one storage alternative per tail."""
    pdms = PDMS("materialization-demo")
    peer = pdms.add_peer("P")
    for relation in ("A1", "A2", "A3"):
        peer.add_relation(relation, ["x", "y"])
    pdms.add_storage_description(
        StorageDescription("P", "s_a1", parse_query("V(x, y) :- P:A1(x, y)")))
    pdms.add_storage_description(
        StorageDescription("P", "s_a2", parse_query("V(x, y) :- P:A2(x, y)")))
    for i in range(ALTERNATIVES):
        pdms.add_storage_description(StorageDescription(
            "P", f"s_a3_{i}", parse_query("V(x, y) :- P:A3(x, y)")))

    rng = random.Random(42)
    instance = Instance()
    instance.add_all(
        "s_a1", {(rng.randrange(DOMAIN), rng.randrange(DOMAIN)) for _ in range(ROWS)})
    instance.add_all(
        "s_a2", {(rng.randrange(DOMAIN), rng.randrange(DOMAIN)) for _ in range(ROWS)})
    for i in range(ALTERNATIVES):
        instance.add_all(f"s_a3_{i}", {
            (rng.randrange(DOMAIN), rng.randrange(DOMAIN)) for _ in range(300)})
    # A guaranteed matching chain so answers are never empty.
    for j in range(12):
        instance.add("s_a1", (j, DOMAIN + j))
        instance.add("s_a2", (DOMAIN + j, 2 * DOMAIN + j))
        for i in range(ALTERNATIVES):
            instance.add(f"s_a3_{i}", (2 * DOMAIN + j, 1000 + i))
    return pdms, instance


def timed(label, call):
    start = time.perf_counter()
    result = call()
    elapsed = (time.perf_counter() - start) * 1000.0
    print(f"  {label:<34s} {elapsed:8.2f} ms  ({len(result)} answers)")
    return result


def print_fragment_counters(service):
    fragments = service.stats.fragments
    print(
        f"  fragment cache: {fragments.hits} hits / {fragments.misses} misses "
        f"(hit rate {fragments.hit_rate:.0%}), "
        f"{fragments.admissions} admitted, {fragments.evictions} evicted, "
        f"{fragments.invalidations} invalidated"
    )


def main():
    pdms, instance = build_system()
    service = QueryService(pdms, data={"P": instance}, engine="shared")
    query = parse_query(
        "Q(x0, x3) :- P:A1(x0, x1), P:A2(x1, x2), P:A3(x2, x3)")

    print("== cold call (reformulate + compile + materialise fragments) ==")
    timed("cold answer", lambda: service.answer(query))
    print_fragment_counters(service)

    print("\n== warm repeats over stable data ==")
    for attempt in range(3):
        timed(f"warm answer #{attempt + 1}", lambda: service.answer(query))
    print_fragment_counters(service)

    print("\n== trickle of writes into ONE variant relation (s_a3_0) ==")
    rng = random.Random(7)
    for round_number in range(3):
        instance.add("s_a3_0", (rng.randrange(DOMAIN), rng.randrange(DOMAIN)))
        timed(f"answer after write #{round_number + 1}",
              lambda: service.answer(query))
    print_fragment_counters(service)
    print("  (the big shared A1⋈A2 fragment stayed warm: only fragments")
    print("   reading s_a3_0 were recomputed)")

    print("\n== a write into a *shared* relation invalidates the big join ==")
    instance.add("s_a1", (DOMAIN - 1, DOMAIN + 1))
    timed("answer after shared write", lambda: service.answer(query))
    print_fragment_counters(service)

    print("\n== service stats ==")
    stats = service.stats
    print(f"  reformulation cache: {stats.hits} hits / {stats.misses} misses")
    print(f"  plans compiled: {stats.plans_compiled}")
    print(f"  fragment cache entries: {len(service.fragment_cache)}, "
          f"{service.fragment_cache.current_bytes / 1024:.0f} KiB")


if __name__ == "__main__":
    main()
