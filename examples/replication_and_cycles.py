#!/usr/bin/env python3
"""Replication, cycles, and the tractability boundary (Section 3).

The paper's Section 3 shows that cycles are the reason query answering can
become intractable, and singles out one benign form of cycle that practice
needs anyway: *data replication*, expressed as a projection-free equality
such as ``ECC:vehicle(...) = 9DC:vehicle(...)``.  This example

1. builds a small PDMS with a replication equality and shows that
   reformulation terminates and finds the answers through the cycle,
2. asks the complexity analyzer to classify several variants — acyclic
   inclusions, projection-free equalities, projecting equalities,
   comparison predicates in different positions — against Theorems
   3.1–3.3, and
3. shows the termination rule at work on a deliberately cyclic pair of
   inclusion mappings.

Run it with::

    python examples/replication_and_cycles.py
"""

from repro.datalog import parse_atom, parse_query
from repro.pdms import (
    PDMS,
    EqualityMapping,
    InclusionMapping,
    StorageDescription,
    analyze_pdms,
    answer_query,
    lav_style,
    reformulate,
    replication,
)


def replication_example() -> None:
    print("=== data replication through a projection-free equality")
    pdms = PDMS("replication")
    ecc = pdms.add_peer("ECC")
    ecc.add_relation("Vehicle", ["vid", "type", "gps"])
    ninedc = pdms.add_peer("9DC")
    ninedc.add_relation("Vehicle", ["vid", "type", "gps"])
    # The Section-3 example: the ECC replicates the dispatch center's table.
    pdms.add_peer_mapping(replication(
        parse_atom("ECC:Vehicle(v, t, g)"), parse_atom("9DC:Vehicle(v, t, g)"),
        name="vehicle_replication"))
    pdms.add_storage_description(StorageDescription(
        "9DC", "vehicles", parse_query("V(v, t, g) :- 9DC:Vehicle(v, t, g)")))

    report = analyze_pdms(pdms)
    print("  analysis:", report)

    query = parse_query("Q(v, g) :- ECC:Vehicle(v, t, g)")
    result = reformulate(pdms, query)
    print("  rule-goal tree:")
    print("   ", result.tree.pretty().replace("\n", "\n    "))
    data = {"vehicles": [("amb1", "ambulance", "45.52,-122.68"),
                         ("eng12", "engine", "45.51,-122.66")]}
    print("  answers over the replicated table:", sorted(answer_query(pdms, query, data)))


def classification_tour() -> None:
    print("\n=== where the tractability boundary falls (Theorems 3.1-3.3)")

    def fresh_pdms():
        pdms = PDMS()
        for name in ("A", "B"):
            peer = pdms.add_peer(name)
            peer.add_relation("R", ["x", "y"])
        return pdms

    cases = {}

    pdms = fresh_pdms()
    pdms.add_peer_mapping(lav_style(
        parse_atom("B:R(x, y)"), parse_query("V(x, y) :- A:R(x, y)")))
    cases["acyclic inclusions only"] = pdms

    pdms = fresh_pdms()
    pdms.add_peer_mapping(replication(parse_atom("A:R(x, y)"), parse_atom("B:R(x, y)")))
    cases["projection-free equality (replication)"] = pdms

    pdms = fresh_pdms()
    pdms.add_peer_mapping(EqualityMapping(
        parse_query("L(x) :- A:R(x, y)"), parse_query("R(x) :- B:R(x, x)")))
    cases["equality with projection"] = pdms

    pdms = fresh_pdms()
    pdms.add_storage_description(StorageDescription(
        "A", "cheap", parse_query("V(x, y) :- A:R(x, y), y < 100")))
    cases["comparisons only in storage descriptions"] = pdms

    pdms = fresh_pdms()
    pdms.add_peer_mapping(InclusionMapping(
        parse_query("L(x, y) :- B:R(x, y), y < 5"),
        parse_query("R(x, y) :- A:R(x, y)")))
    cases["comparisons in a peer mapping"] = pdms

    pdms = fresh_pdms()
    pdms.add_peer_mapping(lav_style(
        parse_atom("A:R(x, y)"), parse_query("V(x, y) :- B:R(x, y)")))
    pdms.add_peer_mapping(lav_style(
        parse_atom("B:R(x, y)"), parse_query("V(x, y) :- A:R(x, y)")))
    cases["cyclic inclusion mappings"] = pdms

    for label, pdms in cases.items():
        print(f"  {label:44s} -> {analyze_pdms(pdms)}")


def cyclic_termination() -> None:
    print("\n=== the 'never reuse a description on a path' rule on a cycle")
    pdms = PDMS("cycle")
    pdms.add_peer("A").add_relation("R", ["x"])
    pdms.add_peer("B").add_relation("R", ["x"])
    pdms.add_peer_mapping(lav_style(
        parse_atom("A:R(x)"), parse_query("V(x) :- B:R(x)"), name="a_in_b"))
    pdms.add_peer_mapping(lav_style(
        parse_atom("B:R(x)"), parse_query("V(x) :- A:R(x)"), name="b_in_a"))
    pdms.add_storage_description(StorageDescription(
        "A", "stored_a", parse_query("V(x) :- A:R(x)")))
    pdms.add_storage_description(StorageDescription(
        "B", "stored_b", parse_query("V(x) :- B:R(x)")))

    query = parse_query("Q(x) :- A:R(x)")
    result = reformulate(pdms, query)
    print("  tree (finite despite the cycle):")
    print("   ", result.tree.pretty().replace("\n", "\n    "))
    data = {"stored_a": [(1,)], "stored_b": [(2,)]}
    print("  answers drawing from both peers:", sorted(answer_query(pdms, query, data)))


def main() -> None:
    replication_example()
    classification_tour()
    cyclic_termination()


if __name__ == "__main__":
    main()
