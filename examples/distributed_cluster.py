#!/usr/bin/env python3
"""The emergency-services scenario on a real 4-peer process cluster.

Each data-bearing peer of the Figure-1 scenario — First Hospital (FH),
Lakeview Hospital (LH), the Portland and Vancouver fire districts (PFD,
VFD) — is hosted in its **own worker process** behind a
:class:`~repro.pdms.distributed.process.ProcessTransport`.  A
:class:`~repro.pdms.distributed.cluster.ServiceCluster` answers the
scenario's queries through the ``"distributed"`` engine: every stored-
relation scan crosses the process boundary as a batched RPC, scattered
concurrently across the owning peers.

The second act injects a peer failure (Lakeview drops off the network)
and shows the runtime degrading honestly: answers shrink to a *sound
subset* and the ``complete`` flag turns ``False`` — then recovery
restores exact answers, because no degraded fragment was ever admitted
to a version-keyed cache.

Run it with::

    python examples/distributed_cluster.py
"""

from repro.datalog import parse_query
from repro.pdms import ProcessTransport, ServiceCluster
from repro.workload import (
    build_emergency_services,
    example_queries,
    sample_peer_instances,
)


def print_answers(label, answers):
    print(f"\n=== {label}")
    for name, answer in answers:
        flag = "complete" if answer.complete else "INCOMPLETE"
        print(f"  {name:34s} -> {len(answer.rows):2d} answers  [{flag}]")
        for failure in answer.failures[:2]:
            print(f"      lost: peer {failure.peer!r} / {failure.relation}")


def print_traffic(transport):
    print("\nper-peer scan traffic so far:")
    for peer in transport.peers():
        print(f"  {peer:4s} {transport.scan_count(peer):4d} scans")


def main() -> None:
    pdms = build_emergency_services()
    per_peer = sample_peer_instances()
    print(f"spinning up {len(per_peer)} worker processes: {sorted(per_peer)}")

    with ProcessTransport(per_peer) as transport:
        with ServiceCluster(pdms=pdms, transport=transport, max_inflight=4) as cluster:
            queries = list(example_queries().items())

            # Act 1: the whole prepared query mix, fanned out concurrently.
            answers = cluster.answer_many([query for _, query in queries])
            print_answers("fault-free cluster answers",
                          [(name, answer) for (name, _), answer
                           in zip(queries, answers)])
            print_traffic(transport)

            # Act 2: Lakeview Hospital drops off the network mid-operation.
            print("\n" + "=" * 72)
            print("Injected failure: Lakeview Hospital (LH) is unreachable.")
            print("=" * 72)
            transport.fail_peer("LH")
            bed_query = parse_query("Q(bid, cls) :- ECC:Bed(bid, loc, cls)")
            degraded = cluster.answer(bed_query)
            print_answers("beds the ECC can route victims to, LH down",
                          [("ecc_beds", degraded)])

            # Act 3: recovery — same query, exact again.
            transport.restore_peer("LH")
            healed = cluster.answer(bed_query)
            print_answers("beds the ECC can route victims to, recovered",
                          [("ecc_beds", healed)])
            assert healed.complete and degraded.rows <= healed.rows

            print_traffic(transport)
            snapshot = cluster.describe()
            print(f"\ncluster: served={snapshot['served']} "
                  f"peak_inflight={snapshot['peak_inflight']} "
                  f"(bound {snapshot['max_inflight']}), "
                  f"transport failures={snapshot['transport_failures']}")
            service = snapshot["service"]
            print(f"service cache: {service['hits']} hits / "
                  f"{service['misses']} misses; fragment hit rate "
                  f"{service['fragments']['hit_rate']:.0%}")


if __name__ == "__main__":
    main()
