"""Legacy setup shim.

The offline reproduction environment lacks the ``wheel`` package, so
PEP 660 editable installs fail; keeping a ``setup.py`` lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
